//! The event-loop serving core: a small number of I/O threads multiplex
//! every client socket through `epoll`, while planning stays on the
//! worker pool behind the bounded admission queue.
//!
//! ```text
//!            epoll (readiness)                BoundedQueue<Job>
//!   sockets ──────────────▶ I/O thread ──admit──▶ worker pool
//!      ▲                        ▲                     │
//!      │    write buffers       │  Inbox + eventfd    │ encoded response
//!      └────────────────────────┴──────◀──────────────┘
//! ```
//!
//! Thread 0 owns the (non-blocking) listener and deals fresh connections
//! round-robin to all I/O threads through their [`Inbox`]es. Each
//! connection lives on exactly one thread; its bytes feed a resumable
//! [`FrameDecoder`], decoded messages queue in a small `pending` ring,
//! and at most **one** frame per connection is in flight on the worker
//! pool at a time — which is what keeps responses in request order
//! without any sequencing machinery. Workers hand finished responses
//! back as pre-encoded bytes via [`CompletionSink`]: an [`Inbox`] push
//! plus an eventfd wake, so the owning thread wakes from `epoll_wait`
//! and copies the bytes into the connection's write buffer.
//!
//! Backpressure is per connection and two-sided: when the write buffer
//! exceeds `wbuf_limit` or more than `pending_limit` decoded messages
//! wait, the connection's `EPOLLIN` interest is parked (counted in
//! `redistd_io_backpressure_total`) until the peer drains responses —
//! a slow reader throttles itself, never the loop. Tokens carry a slab
//! index plus a per-slot generation, so a completion for a connection
//! that died mid-plan is discarded instead of landing on a reused slot.
//!
//! Shutdown mirrors the thread-core drain: stop accepting, serve every
//! admitted request, flush, then exit — with a patience bound so a peer
//! that stops reading cannot hold the process open.

#![cfg(target_os = "linux")]

use crate::queue::Inbox;
use crate::server::{Admission, Reply, Shared};
use crate::sys::{self, Epoll, EpollEvent, WakeFd, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::{self, FrameDecoder, Incoming};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Epoll token of the thread's wakeup eventfd.
const WAKE_TOKEN: u64 = 0;
/// Epoll token of the listener (thread 0 only).
const LISTEN_TOKEN: u64 = 1;
/// Connection tokens start here: `token = slot + CONN_BASE`.
const CONN_BASE: u64 = 2;

/// Tick granularity: shutdown polling and stall sweeps.
const TICK: Duration = Duration::from_millis(50);
/// How often parked/stalled connections are swept.
const SWEEP_EVERY: Duration = Duration::from_millis(250);
/// How long a drain waits for unflushed peers before force-closing them.
const DRAIN_PATIENCE: Duration = Duration::from_secs(5);
/// Listen backlog requested at startup (best effort; also capped by
/// `net.core.somaxconn`). The std default of 128 refuses bursts well
/// below the 1024-connection campaign.
const LISTEN_BACKLOG: i32 = 4096;

/// Per-I/O-thread mailbox: fresh connections from the acceptor and
/// completions from workers, each push paired with an eventfd wake.
pub(crate) struct IoShared {
    wakeup: WakeFd,
    inbox: Inbox<IoMsg>,
}

pub(crate) enum IoMsg {
    /// A freshly accepted connection dealt to this thread.
    Conn(TcpStream),
    /// A worker finished the in-flight frame of connection `token`.
    Complete {
        token: usize,
        generation: u64,
        bytes: Vec<u8>,
    },
}

/// The worker-side half of a queued frame: routes the encoded response
/// back to the connection's owning I/O thread.
pub(crate) struct CompletionSink {
    io: Arc<IoShared>,
    token: usize,
    generation: u64,
}

impl CompletionSink {
    /// Hands the encoded response frame back to the I/O thread.
    pub(crate) fn complete(self, bytes: Vec<u8>) {
        self.io.inbox.push(IoMsg::Complete {
            token: self.token,
            generation: self.generation,
            bytes,
        });
        self.io.wakeup.wake();
    }
}

/// Handle over the running I/O threads.
pub(crate) struct IoHandle {
    threads: Vec<JoinHandle<()>>,
    io: Vec<Arc<IoShared>>,
}

impl IoHandle {
    /// Wakes every I/O thread so it notices the shutdown flag promptly.
    pub(crate) fn wake_all(&self) {
        for io in &self.io {
            io.wakeup.wake();
        }
    }

    /// Joins the I/O threads (call after the workers drained, so every
    /// completion has been delivered).
    pub(crate) fn join(self) {
        self.wake_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Spawns the I/O threads. The listener must already be non-blocking.
pub(crate) fn start_io(shared: Arc<Shared>, listener: TcpListener) -> io::Result<IoHandle> {
    let n = shared.config.io_threads.max(1);
    let _ = sys::set_backlog(listener.as_raw_fd(), LISTEN_BACKLOG);
    let mut io = Vec::with_capacity(n);
    for _ in 0..n {
        io.push(Arc::new(IoShared {
            wakeup: WakeFd::new()?,
            inbox: Inbox::new(),
        }));
    }
    let mut threads = Vec::with_capacity(n);
    let mut listener = Some(listener);
    for i in 0..n {
        let epoll = Epoll::new()?;
        let my = io[i].clone();
        epoll.add(my.wakeup.fd(), EPOLLIN, WAKE_TOKEN)?;
        let thread_listener = if i == 0 { listener.take() } else { None };
        if let Some(l) = &thread_listener {
            epoll.add(l.as_raw_fd(), EPOLLIN, LISTEN_TOKEN)?;
        }
        let lp = IoLoop {
            shared: shared.clone(),
            epoll,
            my,
            peers: io.clone(),
            me: i,
            listener: thread_listener,
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            next_peer: 0,
            open: 0,
            drain_started: None,
            last_sweep: Instant::now(),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("redistd-io-{i}"))
                .spawn(move || lp.run())
                .expect("spawn io thread"),
        );
    }
    Ok(IoHandle { threads, io })
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Decoded-but-unprocessed messages (bounded by `pending_limit`).
    pending: VecDeque<Incoming>,
    /// Encoded response bytes not yet written; `wpos` is the flushed
    /// prefix, compacted lazily.
    wbuf: Vec<u8>,
    wpos: usize,
    /// One frame on the worker pool at a time — per-connection response
    /// order for free.
    in_flight: bool,
    /// Slot generation captured at registration; guards reused slots
    /// against stale completions.
    generation: u64,
    /// Currently armed epoll interest mask.
    interest: u32,
    /// Peer closed its writing half (EOF seen).
    read_closed: bool,
    /// The decoder hit a protocol error: serve what was decoded before
    /// the bad bytes, then close (blocking-path parity).
    decode_failed: bool,
    /// Admin command answered (or error queued): close once flushed.
    close_after_flush: bool,
    /// Set while a message is torn mid-stream; enforced against
    /// `wire`'s mid-message patience by the sweep.
    stalled_since: Option<Instant>,
}

impl Conn {
    fn unwritten(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

struct IoLoop {
    shared: Arc<Shared>,
    epoll: Epoll,
    my: Arc<IoShared>,
    peers: Vec<Arc<IoShared>>,
    me: usize,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on close so stale completions miss.
    generations: Vec<u64>,
    free: Vec<usize>,
    next_peer: usize,
    open: usize,
    drain_started: Option<Instant>,
    last_sweep: Instant,
}

impl IoLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
        loop {
            let n = match self.epoll.wait(&mut events, TICK.as_millis() as i32) {
                Ok(n) => n,
                Err(_) => continue,
            };
            let draining = self.shared.shutdown.load(Ordering::SeqCst);
            if draining {
                self.drain_started.get_or_insert_with(Instant::now);
                // Stop accepting: dropping the listener closes it (and
                // deregisters it from epoll).
                self.listener = None;
            }
            for ev in events.iter().take(n).copied() {
                let (mask, token) = (ev.events, ev.data);
                match token {
                    WAKE_TOKEN => self.my.wakeup.drain(),
                    LISTEN_TOKEN => self.accept_burst(draining),
                    t => {
                        let slot = (t - CONN_BASE) as usize;
                        // Any error/hangup bit funnels through the read
                        // path, which observes it as EOF or an I/O error.
                        let readable = mask & (EPOLLIN | EPOLLRDHUP) != 0
                            || mask & !(EPOLLIN | EPOLLOUT | EPOLLRDHUP) != 0;
                        let writable = mask & EPOLLOUT != 0;
                        self.service(slot, readable, writable, draining);
                    }
                }
            }
            self.handle_msgs(draining);
            self.sweep(draining);
            if draining && self.my.inbox.is_empty() && self.open == 0 {
                return;
            }
        }
    }

    fn accept_burst(&mut self, draining: bool) {
        loop {
            if draining {
                return;
            }
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    self.shared.metrics.accepts_total.inc();
                    let target = self.next_peer % self.peers.len();
                    self.next_peer = self.next_peer.wrapping_add(1);
                    if target == self.me {
                        self.add_conn(stream);
                    } else {
                        self.peers[target].inbox.push(IoMsg::Conn(stream));
                        self.peers[target].wakeup.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the peer
                // already reset): keep listening.
                Err(_) => return,
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            }
        };
        let interest = EPOLLIN | EPOLLRDHUP;
        if self
            .epoll
            .add(stream.as_raw_fd(), interest, CONN_BASE + slot as u64)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.conns[slot] = Some(Conn {
            stream,
            decoder: FrameDecoder::new(),
            pending: VecDeque::new(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: false,
            generation: self.generations[slot],
            interest,
            read_closed: false,
            decode_failed: false,
            close_after_flush: false,
            stalled_since: None,
        });
        self.open += 1;
        self.shared.open_connections.fetch_add(1, Ordering::Relaxed);
    }

    fn close(&mut self, slot: usize) {
        if self.conns[slot].take().is_some() {
            // Dropping the stream closes the fd, which also deregisters
            // it from epoll.
            self.generations[slot] += 1;
            self.free.push(slot);
            self.open -= 1;
            self.shared.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn handle_msgs(&mut self, draining: bool) {
        for msg in self.my.inbox.drain() {
            match msg {
                IoMsg::Conn(stream) => {
                    if !draining {
                        self.add_conn(stream);
                    }
                    // Draining: drop — same as the thread core refusing
                    // new connections at shutdown.
                }
                IoMsg::Complete {
                    token,
                    generation,
                    bytes,
                } => {
                    let live = self
                        .conns
                        .get_mut(token)
                        .and_then(|c| c.as_mut())
                        .filter(|c| c.generation == generation);
                    if let Some(conn) = live {
                        conn.in_flight = false;
                        conn.wbuf.extend_from_slice(&bytes);
                        self.service(token, false, true, draining);
                    }
                    // Stale generation: the connection died mid-plan; the
                    // plan is cached, the bytes are dropped.
                }
            }
        }
    }

    /// The per-connection engine: read what the socket has, decode, pump
    /// admissions, flush, then decide interest/closure. Every readiness
    /// event, completion and sweep funnels through here.
    fn service(&mut self, slot: usize, readable: bool, writable: bool, draining: bool) {
        if self.conns.get(slot).is_none_or(|c| c.is_none()) {
            return;
        }
        let pending_limit = self.shared.config.pending_limit.max(1);
        let wbuf_limit = self.shared.config.wbuf_limit.max(1);

        // Read phase: pull bytes while below both backpressure limits,
        // feed the resumable decoder, queue complete messages.
        if readable {
            let conn = self.conns[slot].as_mut().unwrap();
            let mut dead = false;
            if !conn.read_closed && !conn.decode_failed {
                let mut buf = [0u8; 16 * 1024];
                loop {
                    if conn.pending.len() >= pending_limit || conn.unwritten() >= wbuf_limit {
                        break; // backpressured: leave the rest in the kernel
                    }
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            conn.read_closed = true;
                            break;
                        }
                        Ok(n) => {
                            conn.decoder.extend(&buf[..n]);
                            while conn.pending.len() < pending_limit {
                                match conn.decoder.poll() {
                                    Ok(Some(msg)) => conn.pending.push_back(msg),
                                    Ok(None) => break,
                                    Err(_) => {
                                        // Protocol violation (oversized
                                        // frame, torn admin command): what
                                        // decoded before it is still
                                        // served, nothing after.
                                        conn.decode_failed = true;
                                        break;
                                    }
                                }
                            }
                            if conn.decode_failed || n < buf.len() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                // Mid-message with nothing left in the kernel: the *peer*
                // stalled, start (or keep) the patience clock. While
                // backpressured the parking is our own doing — undecoded
                // bytes waiting out a full pending ring say nothing about
                // the peer — so the clock must not run.
                let parked = conn.pending.len() >= pending_limit || conn.unwritten() >= wbuf_limit;
                if conn.decoder.is_mid_message() && !conn.read_closed && !parked {
                    conn.stalled_since.get_or_insert_with(Instant::now);
                } else {
                    conn.stalled_since = None;
                }
            }
            if dead {
                self.close(slot);
                return;
            }
        }

        // Decode phase: drain buffered-but-undecoded messages into the
        // pending ring whenever it has room. This must not depend on
        // readability — a read that parked on a full ring can leave whole
        // messages sitting in the decoder with nothing left in the kernel,
        // so no further readiness event would ever re-deliver them.
        {
            let conn = self.conns[slot].as_mut().unwrap();
            if !conn.decode_failed {
                while conn.pending.len() < pending_limit {
                    match conn.decoder.poll() {
                        Ok(Some(msg)) => conn.pending.push_back(msg),
                        Ok(None) => break,
                        Err(_) => {
                            conn.decode_failed = true;
                            break;
                        }
                    }
                }
            }
        }

        // Pump phase: admit decoded messages while the connection may take
        // on work — one frame in flight, write buffer under its limit.
        loop {
            let conn = self.conns[slot].as_mut().unwrap();
            if conn.in_flight || conn.close_after_flush || conn.unwritten() >= wbuf_limit {
                break;
            }
            let Some(msg) = conn.pending.pop_front() else {
                break;
            };
            let generation = conn.generation;
            let body: Vec<u8> = match msg {
                // Admin commands are one-shot: answer, then close.
                Incoming::Stats => {
                    let body = self.shared.render_stats().into_bytes();
                    self.conns[slot].as_mut().unwrap().close_after_flush = true;
                    body
                }
                Incoming::Metrics => {
                    let body = self.shared.render_metrics().into_bytes();
                    self.conns[slot].as_mut().unwrap().close_after_flush = true;
                    body
                }
                Incoming::Flight => {
                    let body = self.shared.flight.render().into_bytes();
                    self.conns[slot].as_mut().unwrap().close_after_flush = true;
                    body
                }
                Incoming::Frame(payload) => {
                    let sink = CompletionSink {
                        io: self.my.clone(),
                        token: slot,
                        generation,
                    };
                    match crate::server::admit_frame(&self.shared, &payload, move || {
                        Reply::Event(sink)
                    }) {
                        Admission::Immediate(resp, version) => {
                            wire::encode_response(&resp, version)
                        }
                        Admission::Queued { .. } => {
                            self.conns[slot].as_mut().unwrap().in_flight = true;
                            Vec::new()
                        }
                    }
                }
                // The decoder never yields Eof; EOF is a read of 0 above.
                Incoming::Eof => Vec::new(),
            };
            if !body.is_empty() {
                self.conns[slot]
                    .as_mut()
                    .unwrap()
                    .wbuf
                    .extend_from_slice(&body);
            }
        }

        // Flush phase: write whatever is buffered; WouldBlock arms
        // EPOLLOUT below.
        {
            let conn = self.conns[slot].as_mut().unwrap();
            let mut dead = false;
            if writable || conn.unwritten() > 0 {
                while conn.wpos < conn.wbuf.len() {
                    match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => conn.wpos += n,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if conn.wpos == conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                } else if conn.wpos >= 64 * 1024 {
                    conn.wbuf.drain(..conn.wpos);
                    conn.wpos = 0;
                }
            }
            if dead {
                self.close(slot);
                return;
            }
        }

        // Closure decision + interest re-arm. Reads stay parked while
        // backpressured (slow reader, full pending ring) or once the
        // stream has nothing more to say; writes only while bytes wait.
        let (done, want, was, fd, backpressured) = {
            let conn = self.conns[slot].as_ref().unwrap();
            let flushed = conn.unwritten() == 0;
            let idle = !conn.in_flight && conn.pending.is_empty();
            let closing = conn.close_after_flush || conn.read_closed || conn.decode_failed;
            let done = flushed && ((closing && idle) || (draining && !conn.in_flight));
            let backpressured =
                conn.pending.len() >= pending_limit || conn.unwritten() >= wbuf_limit;
            let mut want = 0;
            if !conn.read_closed && !conn.decode_failed && !draining && !backpressured {
                want |= EPOLLIN | EPOLLRDHUP;
            }
            if conn.unwritten() > 0 {
                want |= EPOLLOUT;
            }
            (
                done,
                want,
                conn.interest,
                conn.stream.as_raw_fd(),
                backpressured,
            )
        };
        if done {
            self.close(slot);
            return;
        }
        if want != was {
            if was & EPOLLIN != 0 && want & EPOLLIN == 0 && backpressured {
                self.shared.metrics.io_backpressure_total.inc();
            }
            if self.epoll.modify(fd, want, CONN_BASE + slot as u64).is_ok() {
                self.conns[slot].as_mut().unwrap().interest = want;
            }
        }
    }

    /// Periodic sweep: enforce the mid-message stall bound, nudge parked
    /// connections whose backpressure cleared, and force the drain after
    /// its patience runs out.
    fn sweep(&mut self, draining: bool) {
        if !draining && self.last_sweep.elapsed() < SWEEP_EVERY {
            return;
        }
        self.last_sweep = Instant::now();
        let force_drain = draining
            && self
                .drain_started
                .is_some_and(|t| t.elapsed() > DRAIN_PATIENCE);
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            if force_drain {
                self.close(slot);
                continue;
            }
            let stalled = conn
                .stalled_since
                .is_some_and(|t| t.elapsed() > wire::MID_MESSAGE_PATIENCE);
            if stalled {
                self.close(slot);
                continue;
            }
            // Backpressure may have cleared without a readiness event
            // (responses flushed from a completion): re-run the engine so
            // EPOLLIN gets re-armed and pending work pumps.
            self.service(slot, false, false, draining);
        }
    }
}

impl std::fmt::Debug for CompletionSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionSink")
            .field("token", &self.token)
            .field("generation", &self.generation)
            .finish()
    }
}
