//! The length-prefixed binary wire protocol.
//!
//! Every frame on the wire is a big-endian `u32` payload length followed by
//! the payload. Payloads open with the 4-byte magic `RDST` and a `u16`
//! protocol version, so a stray client speaking the wrong protocol fails
//! loudly instead of being misparsed. The exception is the plaintext admin
//! commands: a client may send the literal ASCII bytes `STATS\n`,
//! `METRICS\n`, or `FLIGHT\n` instead of a frame, and the server answers
//! with a plain-text report and closes the connection (the magic's first
//! byte `R` can never collide with the commands' first bytes, and the
//! server sniffs the first four bytes before committing to a length).
//!
//! # Versioning
//!
//! The current version is 3; the server accepts 1 through 3 and **replies
//! in the version the request was sent with**, so old clients keep working
//! unchanged. Version 2 adds one field: `Ok` responses carry a trailing
//! `server_id` — the request id the server minted at admission, the key
//! that joins a client-observed response to its flight-recorder record,
//! span timeline, and metric deltas. Version-1 responses omit the field
//! and decode with `server_id = 0` ("not correlated").
//!
//! Version 3 adds the **session ops** of the delta-planning control plane:
//! request kinds 1–4 (`OPEN`/`DELTA`/`COMMIT`/`CLOSE`) and response
//! statuses 4 (session ok) and 5 (session rejected). The kinds are
//! version-gated — a v1/v2 frame carrying them is refused — and kind 0
//! frames encode byte-identically to v2, so the extension is invisible to
//! stateless clients.
//!
//! # Session request payloads (v3, kinds 1–4)
//!
//! `OPEN` (kind 1) carries exactly a plan request's body after the kind
//! byte. `DELTA` (kind 2) carries `request id (u64)`, `session id (u64)`,
//! `ndeltas (u32)` and then per delta a tag byte: 0 = set-cell
//! `(sender u32, receiver u32, bytes u64)`, 1 = grow-nodes
//! `(senders u32, receivers u32)`, 2 = drop-sender `(sender u32)`,
//! 3 = drop-receiver `(receiver u32)`. `COMMIT` (kind 3) and `CLOSE`
//! (kind 4) carry `request id (u64), session id (u64)`.
//!
//! A session response (status 4) carries `session id (u64)`,
//! `generation (u64)`, a repair-`level` byte, then the same
//! schedule/cost/lower-bound/work/server-id tail as a plan `Ok`. Status 5
//! is a session rejection: `session id (u64)` plus a reason byte
//! (0 = table full, 1 = unknown session).
//!
//! # Plan request payload
//!
//! | field       | type           | notes                                   |
//! |-------------|----------------|-----------------------------------------|
//! | magic       | `[u8; 4]`      | `RDST`                                  |
//! | version     | `u16`          | 1 or 2 (layout identical)               |
//! | kind        | `u8`           | 0 = plan                                |
//! | request id  | `u64`          | echoed verbatim in the response         |
//! | algorithm   | `u8`           | 0 = OGGP, 1 = GGP                       |
//! | n1, n2      | `u32 × 2`      | senders × receivers                     |
//! | t1, t2, T, β| `f64 × 4`      | platform Mbit/s throughputs, β seconds  |
//! | nnz         | `u32`          | non-zero message count                  |
//! | row_ptr     | `u32 × (n1+1)` | CSR row offsets into the entry list     |
//! | entries     | `(u32, u64) × nnz` | column, bytes — strictly ascending columns per row |
//!
//! # Plan response payload
//!
//! | field       | type      | notes                                        |
//! |-------------|-----------|----------------------------------------------|
//! | magic       | `[u8; 4]` | `RDST`                                       |
//! | version     | `u16`     | echoes the request's version                 |
//! | request id  | `u64`     | copied from the request                      |
//! | status      | `u8`      | 0 = ok, 1 = queue full, 2 = matrix too large, 3 = error |
//! | ok: cached  | `u8`      | 1 when served from the plan cache            |
//! | ok: schedule| see [`encode_schedule`] | byte-identical to a cold plan  |
//! | ok: cost    | `u64`     | `Σ (β + step duration)` in ticks             |
//! | ok: lower bound | `u64` | Cohen–Jeannot–Padoy bound in ticks           |
//! | ok: work    | `u8` + `u64 × n` | per-request counter deltas, [`Counter::ALL`](telemetry::counters::Counter::ALL) order |
//! | ok: server id | `u64`   | **v2 only**: server-minted correlation id    |
//! | error: message | `u32` + utf-8 | decode/validation failure detail         |
//!
//! The CSR encoding is the *canonical* construction: rows in sender order,
//! strictly ascending columns inside a row, all byte counts positive. The
//! decoder rejects anything else, which is what lets the server key its
//! plan cache on [`mod@kpbs::fingerprint`] — equal matrices always decode into
//! identical instances (see that module's docs).

use kpbs::{Schedule, TrafficMatrix};
use std::io::{self, Read, Write};
use telemetry::counters::COUNTER_COUNT;

/// Frame magic: first four payload bytes of every binary frame.
pub const MAGIC: [u8; 4] = *b"RDST";
/// Current protocol version (what new clients send).
pub const VERSION: u16 = 3;
/// Oldest version that understands the session ops (kinds 1–4).
pub const SESSION_MIN_VERSION: u16 = 3;
/// Oldest version the server still accepts.
pub const MIN_VERSION: u16 = 1;
/// Hard ceiling on any frame payload (16 MiB) — a malformed length prefix
/// must not make the server allocate unboundedly.
pub const MAX_FRAME: u32 = 16 << 20;
/// The plaintext admin command requesting the human-readable stats report.
pub const STATS_COMMAND: &[u8] = b"STATS\n";
/// The plaintext admin command requesting Prometheus text exposition.
pub const METRICS_COMMAND: &[u8] = b"METRICS\n";
/// The plaintext admin command requesting a flight-recorder dump.
pub const FLIGHT_COMMAND: &[u8] = b"FLIGHT\n";

/// Scheduling algorithm requested on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Optimised Generic Graph Peeling — the default planner.
    Oggp = 0,
    /// Generic Graph Peeling.
    Ggp = 1,
}

impl Algo {
    fn from_u8(v: u8) -> Result<Algo, WireError> {
        match v {
            0 => Ok(Algo::Oggp),
            1 => Ok(Algo::Ggp),
            other => Err(WireError::new(format!("unknown algorithm {other}"))),
        }
    }
}

/// Platform parameters carried by a request (see [`kpbs::Platform`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePlatform {
    /// Sender cluster size.
    pub n1: u32,
    /// Receiver cluster size.
    pub n2: u32,
    /// Sender NIC throughput, Mbit/s.
    pub t1: f64,
    /// Receiver NIC throughput, Mbit/s.
    pub t2: f64,
    /// Backbone throughput, Mbit/s.
    pub backbone: f64,
    /// Per-step setup delay, seconds.
    pub beta_seconds: f64,
}

/// A CSR-encoded traffic matrix: `row_ptr[i]..row_ptr[i+1]` indexes the
/// `(col, bytes)` entries of sender `i`, columns strictly ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix {
    /// Sender count (rows).
    pub n1: u32,
    /// Receiver count (columns).
    pub n2: u32,
    /// `n1 + 1` offsets into `cols`/`bytes`.
    pub row_ptr: Vec<u32>,
    /// Column of each non-zero entry.
    pub cols: Vec<u32>,
    /// Byte count of each non-zero entry (always positive).
    pub bytes: Vec<u64>,
}

impl CsrMatrix {
    /// Compresses a dense [`TrafficMatrix`] (zeros dropped, row-major order
    /// — the canonical encoding).
    pub fn from_traffic(t: &TrafficMatrix) -> CsrMatrix {
        let (n1, n2) = (t.senders(), t.receivers());
        let mut row_ptr = Vec::with_capacity(n1 + 1);
        let mut cols = Vec::new();
        let mut bytes = Vec::new();
        row_ptr.push(0);
        for i in 0..n1 {
            for j in 0..n2 {
                let b = t.get(i, j);
                if b > 0 {
                    cols.push(j as u32);
                    bytes.push(b);
                }
            }
            row_ptr.push(cols.len() as u32);
        }
        CsrMatrix {
            n1: n1 as u32,
            n2: n2 as u32,
            row_ptr,
            cols,
            bytes,
        }
    }

    /// Expands back into a dense [`TrafficMatrix`].
    pub fn to_traffic(&self) -> TrafficMatrix {
        let mut t = TrafficMatrix::zeros(self.n1 as usize, self.n2 as usize);
        for i in 0..self.n1 as usize {
            for e in self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize {
                t.set(i, self.cols[e] as usize, self.bytes[e]);
            }
        }
        t
    }

    /// Number of matrix cells (`n1 × n2`) — the admission-control size.
    pub fn cells(&self) -> u64 {
        self.n1 as u64 * self.n2 as u64
    }

    /// Structural validation: offsets monotone and in range, columns
    /// strictly ascending per row and `< n2`, byte counts positive.
    pub fn validate(&self) -> Result<(), WireError> {
        if self.row_ptr.len() != self.n1 as usize + 1 {
            return Err(WireError::new("row_ptr length mismatch"));
        }
        if self.row_ptr[0] != 0 || *self.row_ptr.last().unwrap() as usize != self.cols.len() {
            return Err(WireError::new("row_ptr endpoints invalid"));
        }
        if self.cols.len() != self.bytes.len() {
            return Err(WireError::new("cols/bytes length mismatch"));
        }
        for w in self.row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(WireError::new("row_ptr not monotone"));
            }
        }
        for i in 0..self.n1 as usize {
            let row = &self.cols[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(WireError::new(format!("row {i} columns not ascending")));
                }
            }
            if row.iter().any(|&c| c >= self.n2) {
                return Err(WireError::new(format!("row {i} column out of range")));
            }
        }
        if self.bytes.contains(&0) {
            return Err(WireError::new("zero-byte entry"));
        }
        Ok(())
    }
}

/// A decoded planning request.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Protocol version this request speaks ([`MIN_VERSION`]`..=`[`VERSION`]).
    /// The server replies in the same version.
    pub wire_version: u16,
    /// Client-chosen identifier, echoed in the response.
    pub request_id: u64,
    /// Requested algorithm.
    pub algo: Algo,
    /// Platform parameters.
    pub platform: WirePlatform,
    /// The traffic matrix.
    pub matrix: CsrMatrix,
}

/// One sparse matrix edit carried by a `DELTA` frame. Cell amounts are in
/// **bytes** (like plan-request entries); the server converts them to
/// ticks with the session's platform, exactly as it does matrix cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDelta {
    /// Sets cell `(sender, receiver)` to `bytes` (zero clears it).
    SetCell {
        /// Sender (row) index.
        sender: u32,
        /// Receiver (column) index.
        receiver: u32,
        /// New message size in bytes; 0 cancels the message.
        bytes: u64,
    },
    /// Appends sender and/or receiver nodes to the live instance.
    GrowNodes {
        /// Sender nodes to append.
        senders: u32,
        /// Receiver nodes to append.
        receivers: u32,
    },
    /// Cancels every message of one sender (node drop).
    DropSender(
        /// Sender (row) index.
        u32,
    ),
    /// Cancels every message towards one receiver (node drop).
    DropReceiver(
        /// Receiver (column) index.
        u32,
    ),
}

/// The session operation a v3 frame requests.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionOp {
    /// Opens a session: cold-plans the matrix and holds it live.
    Open {
        /// Requested algorithm for the session's plans.
        algo: Algo,
        /// Platform parameters (fixed for the session's lifetime).
        platform: WirePlatform,
        /// The initial traffic matrix.
        matrix: CsrMatrix,
    },
    /// Applies deltas to a live session and repairs its schedule.
    Delta {
        /// Server-minted session id from the `Open` response.
        session_id: u64,
        /// The edits, applied in order.
        deltas: Vec<WireDelta>,
    },
    /// Publishes the session's current plan into the shared plan cache.
    Commit {
        /// Server-minted session id.
        session_id: u64,
    },
    /// Closes the session and frees its state.
    Close {
        /// Server-minted session id.
        session_id: u64,
    },
}

/// A decoded session request (wire kinds 1–4; v3+ only).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRequest {
    /// Protocol version this request speaks (≥ [`SESSION_MIN_VERSION`]).
    pub wire_version: u16,
    /// Client-chosen identifier, echoed in the response.
    pub request_id: u64,
    /// The requested operation.
    pub op: SessionOp,
}

/// Any decodable binary request frame: a stateless plan (kind 0, any
/// version) or a session op (kinds 1–4, v3+).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A stateless plan request.
    Plan(PlanRequest),
    /// A session operation.
    Session(SessionRequest),
}

impl Request {
    /// The client-chosen request id.
    pub fn request_id(&self) -> u64 {
        match self {
            Request::Plan(r) => r.request_id,
            Request::Session(r) => r.request_id,
        }
    }

    /// The protocol version the request was sent with.
    pub fn wire_version(&self) -> u16 {
        match self {
            Request::Plan(r) => r.wire_version,
            Request::Session(r) => r.wire_version,
        }
    }
}

/// What a session response reports the planner did (mirrors
/// [`kpbs::delta::RepairLevel`] plus the lifecycle ops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionLevel {
    /// The session was opened with a cold plan.
    Opened = 0,
    /// The delta was absorbed by in-place repair.
    Repair = 1,
    /// The delta needed a bounded re-peel.
    RePeel = 2,
    /// The delta fell back to a cold plan.
    Cold = 3,
    /// The current plan was committed to the shared cache.
    Committed = 4,
    /// The session was closed.
    Closed = 5,
}

impl SessionLevel {
    fn from_u8(v: u8) -> Result<SessionLevel, WireError> {
        Ok(match v {
            0 => SessionLevel::Opened,
            1 => SessionLevel::Repair,
            2 => SessionLevel::RePeel,
            3 => SessionLevel::Cold,
            4 => SessionLevel::Committed,
            5 => SessionLevel::Closed,
            other => return Err(WireError::new(format!("unknown session level {other}"))),
        })
    }

    /// Stable lower-case label (logs, JSON, load-generator reports).
    pub fn label(self) -> &'static str {
        match self {
            SessionLevel::Opened => "opened",
            SessionLevel::Repair => "repair",
            SessionLevel::RePeel => "repeel",
            SessionLevel::Cold => "cold",
            SessionLevel::Committed => "committed",
            SessionLevel::Closed => "closed",
        }
    }
}

/// Why a session op was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionRejectReason {
    /// The session table is at capacity (backpressure; retry later).
    TableFull = 0,
    /// The session id is unknown (never opened, closed, or evicted).
    UnknownSession = 1,
}

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded request queue was at capacity (backpressure, not a hang).
    QueueFull,
    /// The matrix exceeds the server's configured cell limit.
    MatrixTooLarge,
}

/// A decoded response.
///
/// The `Ok` variant carries the inline `work` counter array (~200 bytes);
/// responses live one at a time per connection, never in bulk, so the
/// variant size imbalance costs nothing.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum PlanResponse {
    /// The request was planned (or served from cache).
    Ok {
        /// Echoed request id.
        request_id: u64,
        /// True when the schedule came from the plan cache.
        cached: bool,
        /// The schedule — byte-identical to a cold run on the same instance.
        schedule: Schedule,
        /// Schedule cost in ticks.
        cost: u64,
        /// Lower bound in ticks.
        lower_bound: u64,
        /// Work-counter deltas of *this* request, [`telemetry::counters::Counter::ALL`] order.
        work: [u64; COUNTER_COUNT],
        /// Server-minted request id (v2 frames only; 0 from a v1 response).
        /// Joins this response to the server's flight record and spans.
        server_id: u64,
    },
    /// Admission control refused the request.
    Rejected {
        /// Echoed request id.
        request_id: u64,
        /// Why.
        reason: RejectReason,
    },
    /// The request could not be decoded or was structurally invalid.
    Error {
        /// Echoed request id (0 when the id itself was unreadable).
        request_id: u64,
        /// Failure detail.
        message: String,
    },
    /// A session op succeeded (v3 status 4).
    Session {
        /// Echoed request id.
        request_id: u64,
        /// The session the op addressed (server-minted at `OPEN`).
        session_id: u64,
        /// The session's replan generation after this op.
        generation: u64,
        /// What the planner did.
        level: SessionLevel,
        /// The session's committed schedule after this op.
        schedule: Schedule,
        /// Schedule cost in ticks.
        cost: u64,
        /// Lower bound of the live instance in ticks.
        lower_bound: u64,
        /// Work-counter deltas of this op, [`telemetry::counters::Counter::ALL`] order.
        work: [u64; COUNTER_COUNT],
        /// Server-minted correlation id.
        server_id: u64,
    },
    /// A session op was refused (v3 status 5).
    SessionRejected {
        /// Echoed request id.
        request_id: u64,
        /// The session id the op addressed (0 for a refused `OPEN`).
        session_id: u64,
        /// Why.
        reason: SessionRejectReason,
    },
}

/// A malformed frame or field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl WireError {
    fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------- cursors

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::new("truncated frame"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::new("trailing bytes in frame"))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn check_header(c: &mut Cursor) -> Result<u16, WireError> {
    if c.take(4)? != MAGIC {
        return Err(WireError::new("bad magic"));
    }
    let v = c.u16()?;
    if !(MIN_VERSION..=VERSION).contains(&v) {
        return Err(WireError::new(format!("unsupported version {v}")));
    }
    Ok(v)
}

// --------------------------------------------------------------- encoding

/// Encodes a request as a full frame (length prefix included).
pub fn encode_request(req: &PlanRequest) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + 12 * req.matrix.cols.len());
    p.extend_from_slice(&MAGIC);
    put_u16(&mut p, req.wire_version);
    p.push(0); // kind: plan
    put_u64(&mut p, req.request_id);
    p.push(req.algo as u8);
    put_u32(&mut p, req.platform.n1);
    put_u32(&mut p, req.platform.n2);
    put_f64(&mut p, req.platform.t1);
    put_f64(&mut p, req.platform.t2);
    put_f64(&mut p, req.platform.backbone);
    put_f64(&mut p, req.platform.beta_seconds);
    put_u32(&mut p, req.matrix.cols.len() as u32);
    for &o in &req.matrix.row_ptr {
        put_u32(&mut p, o);
    }
    for (&c, &b) in req.matrix.cols.iter().zip(&req.matrix.bytes) {
        put_u32(&mut p, c);
        put_u64(&mut p, b);
    }
    frame(p)
}

/// Encodes a session request as a full frame (length prefix included).
pub fn encode_session_request(req: &SessionRequest) -> Vec<u8> {
    debug_assert!(req.wire_version >= SESSION_MIN_VERSION);
    let mut p = Vec::with_capacity(64);
    p.extend_from_slice(&MAGIC);
    put_u16(&mut p, req.wire_version);
    match &req.op {
        SessionOp::Open {
            algo,
            platform,
            matrix,
        } => {
            p.push(1); // kind: session open
            put_u64(&mut p, req.request_id);
            p.push(*algo as u8);
            put_u32(&mut p, platform.n1);
            put_u32(&mut p, platform.n2);
            put_f64(&mut p, platform.t1);
            put_f64(&mut p, platform.t2);
            put_f64(&mut p, platform.backbone);
            put_f64(&mut p, platform.beta_seconds);
            put_u32(&mut p, matrix.cols.len() as u32);
            for &o in &matrix.row_ptr {
                put_u32(&mut p, o);
            }
            for (&c, &b) in matrix.cols.iter().zip(&matrix.bytes) {
                put_u32(&mut p, c);
                put_u64(&mut p, b);
            }
        }
        SessionOp::Delta { session_id, deltas } => {
            p.push(2); // kind: session delta
            put_u64(&mut p, req.request_id);
            put_u64(&mut p, *session_id);
            put_u32(&mut p, deltas.len() as u32);
            for d in deltas {
                match *d {
                    WireDelta::SetCell {
                        sender,
                        receiver,
                        bytes,
                    } => {
                        p.push(0);
                        put_u32(&mut p, sender);
                        put_u32(&mut p, receiver);
                        put_u64(&mut p, bytes);
                    }
                    WireDelta::GrowNodes { senders, receivers } => {
                        p.push(1);
                        put_u32(&mut p, senders);
                        put_u32(&mut p, receivers);
                    }
                    WireDelta::DropSender(i) => {
                        p.push(2);
                        put_u32(&mut p, i);
                    }
                    WireDelta::DropReceiver(j) => {
                        p.push(3);
                        put_u32(&mut p, j);
                    }
                }
            }
        }
        SessionOp::Commit { session_id } => {
            p.push(3); // kind: session commit
            put_u64(&mut p, req.request_id);
            put_u64(&mut p, *session_id);
        }
        SessionOp::Close { session_id } => {
            p.push(4); // kind: session close
            put_u64(&mut p, req.request_id);
            put_u64(&mut p, *session_id);
        }
    }
    frame(p)
}

/// Decodes any binary request payload — a stateless plan (kind 0) or a
/// session op (kinds 1–4, version-gated to v3+).
pub fn decode_frame(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let wire_version = check_header(&mut c)?;
    let kind = c.u8()?;
    if kind == 0 {
        let request_id = c.u64()?;
        let (algo, platform, matrix) = decode_plan_body(&mut c, payload)?;
        return Ok(Request::Plan(PlanRequest {
            wire_version,
            request_id,
            algo,
            platform,
            matrix,
        }));
    }
    if !(1..=4).contains(&kind) {
        return Err(WireError::new(format!("unknown request kind {kind}")));
    }
    if wire_version < SESSION_MIN_VERSION {
        return Err(WireError::new(format!(
            "request kind {kind} requires protocol version {SESSION_MIN_VERSION}, got {wire_version}"
        )));
    }
    let request_id = c.u64()?;
    let op = match kind {
        1 => {
            let (algo, platform, matrix) = decode_plan_body(&mut c, payload)?;
            SessionOp::Open {
                algo,
                platform,
                matrix,
            }
        }
        2 => {
            let session_id = c.u64()?;
            let ndeltas = c.u32()? as usize;
            let mut deltas = Vec::with_capacity(ndeltas.min(1 << 16));
            for _ in 0..ndeltas {
                deltas.push(match c.u8()? {
                    0 => WireDelta::SetCell {
                        sender: c.u32()?,
                        receiver: c.u32()?,
                        bytes: c.u64()?,
                    },
                    1 => WireDelta::GrowNodes {
                        senders: c.u32()?,
                        receivers: c.u32()?,
                    },
                    2 => WireDelta::DropSender(c.u32()?),
                    3 => WireDelta::DropReceiver(c.u32()?),
                    other => return Err(WireError::new(format!("unknown delta tag {other}"))),
                });
            }
            c.done()?;
            SessionOp::Delta { session_id, deltas }
        }
        3 => {
            let session_id = c.u64()?;
            c.done()?;
            SessionOp::Commit { session_id }
        }
        _ => {
            let session_id = c.u64()?;
            c.done()?;
            SessionOp::Close { session_id }
        }
    };
    Ok(Request::Session(SessionRequest {
        wire_version,
        request_id,
        op,
    }))
}

/// Decodes a stateless plan request payload (kind 0; no length prefix).
pub fn decode_request(payload: &[u8]) -> Result<PlanRequest, WireError> {
    match decode_frame(payload)? {
        Request::Plan(req) => Ok(req),
        Request::Session(_) => Err(WireError::new("expected a plan request, got a session op")),
    }
}

/// Decodes the algo/platform/matrix body shared by plan and `OPEN` frames
/// (everything after the request id), consuming the cursor to the end.
fn decode_plan_body(
    c: &mut Cursor,
    payload: &[u8],
) -> Result<(Algo, WirePlatform, CsrMatrix), WireError> {
    let algo = Algo::from_u8(c.u8()?)?;
    let n1 = c.u32()?;
    let n2 = c.u32()?;
    let t1 = c.f64()?;
    let t2 = c.f64()?;
    let backbone = c.f64()?;
    let beta_seconds = c.f64()?;
    if n1 == 0 || n2 == 0 {
        return Err(WireError::new("empty cluster"));
    }
    // Wire-decoded platforms go through the same validation choke point as
    // every other topology construction (non-finite / non-positive speeds
    // and capacities rejected before anything downstream sees them).
    kpbs::Topology::two_cluster(n1 as usize, n2 as usize, t1, t2, backbone)
        .validate()
        .map_err(|_| WireError::new("invalid platform throughputs"))?;
    if !(beta_seconds >= 0.0 && beta_seconds.is_finite()) {
        return Err(WireError::new("invalid beta"));
    }
    let nnz = c.u32()? as usize;
    // Cheap structural bound before allocating: every offset/entry must fit
    // in the remaining payload.
    let need = (n1 as usize + 1) * 4 + nnz * 12;
    if payload.len() - c.pos != need {
        return Err(WireError::new("matrix section length mismatch"));
    }
    let mut row_ptr = Vec::with_capacity(n1 as usize + 1);
    for _ in 0..=n1 {
        row_ptr.push(c.u32()?);
    }
    let mut cols = Vec::with_capacity(nnz);
    let mut bytes = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        cols.push(c.u32()?);
        bytes.push(c.u64()?);
    }
    c.done()?;
    let matrix = CsrMatrix {
        n1,
        n2,
        row_ptr,
        cols,
        bytes,
    };
    matrix.validate()?;
    Ok((
        algo,
        WirePlatform {
            n1,
            n2,
            t1,
            t2,
            backbone,
            beta_seconds,
        },
        matrix,
    ))
}

/// The deterministic byte encoding of a schedule — the exact bytes an `Ok`
/// response carries, exposed so tests (and the cache-consistency check) can
/// byte-compare a served schedule against a cold plan.
pub fn encode_schedule(s: &Schedule) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, s.beta);
    put_u32(&mut out, s.steps.len() as u32);
    for step in &s.steps {
        put_u32(&mut out, step.transfers.len() as u32);
        for t in &step.transfers {
            put_u32(&mut out, t.edge.0);
            put_u64(&mut out, t.amount);
        }
    }
    out
}

fn decode_schedule(c: &mut Cursor) -> Result<Schedule, WireError> {
    let beta = c.u64()?;
    let num_steps = c.u32()? as usize;
    let mut steps = Vec::with_capacity(num_steps.min(1 << 16));
    for _ in 0..num_steps {
        let nt = c.u32()? as usize;
        let mut transfers = Vec::with_capacity(nt.min(1 << 16));
        for _ in 0..nt {
            let edge = c.u32()?;
            let amount = c.u64()?;
            transfers.push(kpbs::Transfer {
                edge: bipartite::EdgeId(edge),
                amount,
            });
        }
        steps.push(kpbs::Step { transfers });
    }
    Ok(Schedule { steps, beta })
}

/// Encodes a response as a full frame (length prefix included), in the
/// given protocol `version` — the version of the request being answered,
/// so an old client never sees fields it cannot parse.
pub fn encode_response(resp: &PlanResponse, version: u16) -> Vec<u8> {
    debug_assert!((MIN_VERSION..=VERSION).contains(&version));
    let mut p = Vec::new();
    p.extend_from_slice(&MAGIC);
    put_u16(&mut p, version);
    match resp {
        PlanResponse::Ok {
            request_id,
            cached,
            schedule,
            cost,
            lower_bound,
            work,
            server_id,
        } => {
            put_u64(&mut p, *request_id);
            p.push(0);
            p.push(u8::from(*cached));
            p.extend_from_slice(&encode_schedule(schedule));
            put_u64(&mut p, *cost);
            put_u64(&mut p, *lower_bound);
            p.push(COUNTER_COUNT as u8);
            for &w in work.iter() {
                put_u64(&mut p, w);
            }
            if version >= 2 {
                put_u64(&mut p, *server_id);
            }
        }
        PlanResponse::Rejected { request_id, reason } => {
            put_u64(&mut p, *request_id);
            p.push(match reason {
                RejectReason::QueueFull => 1,
                RejectReason::MatrixTooLarge => 2,
            });
        }
        PlanResponse::Error {
            request_id,
            message,
        } => {
            put_u64(&mut p, *request_id);
            p.push(3);
            put_u32(&mut p, message.len() as u32);
            p.extend_from_slice(message.as_bytes());
        }
        PlanResponse::Session {
            request_id,
            session_id,
            generation,
            level,
            schedule,
            cost,
            lower_bound,
            work,
            server_id,
        } => {
            debug_assert!(version >= SESSION_MIN_VERSION);
            put_u64(&mut p, *request_id);
            p.push(4);
            put_u64(&mut p, *session_id);
            put_u64(&mut p, *generation);
            p.push(*level as u8);
            p.extend_from_slice(&encode_schedule(schedule));
            put_u64(&mut p, *cost);
            put_u64(&mut p, *lower_bound);
            p.push(COUNTER_COUNT as u8);
            for &w in work.iter() {
                put_u64(&mut p, w);
            }
            put_u64(&mut p, *server_id);
        }
        PlanResponse::SessionRejected {
            request_id,
            session_id,
            reason,
        } => {
            debug_assert!(version >= SESSION_MIN_VERSION);
            put_u64(&mut p, *request_id);
            p.push(5);
            put_u64(&mut p, *session_id);
            p.push(*reason as u8);
        }
    }
    frame(p)
}

/// Decodes a response payload (no length prefix).
pub fn decode_response(payload: &[u8]) -> Result<PlanResponse, WireError> {
    let mut c = Cursor::new(payload);
    let version = check_header(&mut c)?;
    let request_id = c.u64()?;
    let status = c.u8()?;
    let resp = match status {
        0 => {
            let cached = c.u8()? != 0;
            let schedule = decode_schedule(&mut c)?;
            let cost = c.u64()?;
            let lower_bound = c.u64()?;
            let n = c.u8()? as usize;
            let mut work = [0u64; COUNTER_COUNT];
            for slot in work.iter_mut().take(n) {
                *slot = c.u64()?;
            }
            // Any counters beyond what this build knows are drained and
            // dropped (forward compatibility with a longer table).
            for _ in COUNTER_COUNT..n {
                c.u64()?;
            }
            let server_id = if version >= 2 { c.u64()? } else { 0 };
            PlanResponse::Ok {
                request_id,
                cached,
                schedule,
                cost,
                lower_bound,
                work,
                server_id,
            }
        }
        1 => PlanResponse::Rejected {
            request_id,
            reason: RejectReason::QueueFull,
        },
        2 => PlanResponse::Rejected {
            request_id,
            reason: RejectReason::MatrixTooLarge,
        },
        3 => {
            let len = c.u32()? as usize;
            let msg = String::from_utf8_lossy(c.take(len)?).into_owned();
            PlanResponse::Error {
                request_id,
                message: msg,
            }
        }
        4 => {
            let session_id = c.u64()?;
            let generation = c.u64()?;
            let level = SessionLevel::from_u8(c.u8()?)?;
            let schedule = decode_schedule(&mut c)?;
            let cost = c.u64()?;
            let lower_bound = c.u64()?;
            let n = c.u8()? as usize;
            let mut work = [0u64; COUNTER_COUNT];
            for slot in work.iter_mut().take(n) {
                *slot = c.u64()?;
            }
            for _ in COUNTER_COUNT..n {
                c.u64()?;
            }
            let server_id = c.u64()?;
            PlanResponse::Session {
                request_id,
                session_id,
                generation,
                level,
                schedule,
                cost,
                lower_bound,
                work,
                server_id,
            }
        }
        5 => {
            let session_id = c.u64()?;
            let reason = match c.u8()? {
                0 => SessionRejectReason::TableFull,
                1 => SessionRejectReason::UnknownSession,
                other => {
                    return Err(WireError::new(format!(
                        "unknown session reject reason {other}"
                    )))
                }
            };
            PlanResponse::SessionRejected {
                request_id,
                session_id,
                reason,
            }
        }
        other => return Err(WireError::new(format!("unknown status {other}"))),
    };
    c.done()?;
    Ok(resp)
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 4);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

// ------------------------------------------------------------------- i/o

/// What the server read off a connection: a binary frame or one of the
/// plaintext admin commands.
#[derive(Debug)]
pub enum Incoming {
    /// A binary frame payload (length prefix stripped).
    Frame(Vec<u8>),
    /// The plaintext `STATS\n` admin command.
    Stats,
    /// The plaintext `METRICS\n` admin command (Prometheus exposition).
    Metrics,
    /// The plaintext `FLIGHT\n` admin command (flight-recorder dump).
    Flight,
    /// Clean end of stream before any bytes of a new message.
    Eof,
}

/// How long a reader keeps retrying timeouts *mid-message* before giving
/// up on a stalled peer. Waits *between* messages are not covered: there a
/// timeout surfaces immediately so the server can poll its shutdown flag.
/// The event loop applies the same bound to connections parked mid-frame.
pub(crate) const MID_MESSAGE_PATIENCE: std::time::Duration = std::time::Duration::from_secs(10);

/// Reads one incoming message. Sniffs the first four bytes: `STAT`, `METR`
/// and `FLIG` select the plaintext admin paths, anything else is a frame
/// length. (None of those byte patterns is a plausible length: each decodes
/// to >1 GiB, far beyond [`MAX_FRAME`].)
///
/// Timeout semantics: a `WouldBlock`/`TimedOut` while waiting for the
/// *first byte* of a message propagates untouched (the server polls its
/// shutdown flag on that path). Once a message has started, timeouts are
/// retried — a frame briefly split across packets must not tear the
/// stream's framing — up to a patience bound, after which the connection
/// is abandoned as stalled.
pub fn read_incoming<R: Read>(r: &mut R) -> io::Result<Incoming> {
    let mut head = [0u8; 4];
    match read_head(r, &mut head)? {
        0 => return Ok(Incoming::Eof),
        4 => {}
        _ => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn header")),
    }
    let admin: Option<(&[u8], Incoming)> = match &head {
        b"STAT" => Some((b"S\n", Incoming::Stats)),
        b"METR" => Some((b"ICS\n", Incoming::Metrics)),
        b"FLIG" => Some((b"HT\n", Incoming::Flight)),
        _ => None,
    };
    if let Some((tail, incoming)) = admin {
        let mut rest = vec![0u8; tail.len()];
        read_patiently(r, &mut rest)?;
        if rest != tail {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed admin command",
            ));
        }
        return Ok(incoming);
    }
    let len = u32::from_be_bytes(head);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    read_patiently(r, &mut payload)?;
    Ok(Incoming::Frame(payload))
}

/// Reads one response frame (client side), returning the payload.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    match read_incoming(r)? {
        Incoming::Frame(p) => Ok(p),
        Incoming::Stats | Incoming::Metrics | Incoming::Flight => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected admin command on this stream",
        )),
        Incoming::Eof => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed",
        )),
    }
}

/// Writes pre-framed bytes and flushes.
pub fn write_all<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    w.write_all(bytes)?;
    w.flush()
}

/// An incremental, resumable frame decoder for non-blocking readers.
///
/// [`read_incoming`] assumes a blocking stream: it parks the thread until
/// a whole message has arrived. The event-loop serving core instead feeds
/// whatever bytes `read(2)` happened to return into this state machine
/// with [`FrameDecoder::extend`] and drains complete messages with
/// [`FrameDecoder::poll`] — a message split across any number of reads
/// (down to one byte at a time) decodes byte-identically to the blocking
/// path, and coalesced messages in one read come out one `poll` at a
/// time. The adversarial-chunking proptests in `tests/decoder.rs` pin
/// this equivalence.
///
/// Semantics mirrored from [`read_incoming`]:
/// - the first four bytes of a message are sniffed: `STAT`/`METR`/`FLIG`
///   select the plaintext admin commands, anything else is a big-endian
///   `u32` frame length;
/// - an admin prefix whose tail does not match is `InvalidData`
///   ("malformed admin command");
/// - a length above [`MAX_FRAME`] is `InvalidData` before any payload is
///   buffered, so an abusive peer cannot make the server allocate;
/// - errors are sticky: after an error the decoder refuses further work
///   (the connection is being torn down anyway).
///
/// End-of-stream is the caller's to interpret: on EOF, [`FrameDecoder::is_mid_message`]
/// distinguishes a clean close (no buffered partial message — the blocking
/// path's `Incoming::Eof`) from a torn one (`UnexpectedEof` there).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily by `extend`.
    pos: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder with no buffered bytes.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends bytes received from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: either everything buffered was consumed
        // (cheap truncate) or the dead prefix got large enough to matter.
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded message.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when a message has started but not finished — EOF now would be
    /// the blocking path's "torn message" / "torn header".
    pub fn is_mid_message(&self) -> bool {
        self.pending_bytes() > 0
    }

    /// Decodes the next complete message, `Ok(None)` when more bytes are
    /// needed. Call in a loop after [`FrameDecoder::extend`]: one read may
    /// complete several coalesced messages.
    pub fn poll(&mut self) -> io::Result<Option<Incoming>> {
        if self.poisoned {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "decoder poisoned by an earlier error",
            ));
        }
        match self.poll_inner() {
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
            ok => ok,
        }
    }

    fn poll_inner(&mut self) -> io::Result<Option<Incoming>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let admin = match &avail[..4] {
            b"STAT" => Some((STATS_COMMAND, Incoming::Stats)),
            b"METR" => Some((METRICS_COMMAND, Incoming::Metrics)),
            b"FLIG" => Some((FLIGHT_COMMAND, Incoming::Flight)),
            _ => None,
        };
        if let Some((command, incoming)) = admin {
            if avail.len() < command.len() {
                return Ok(None);
            }
            if &avail[..command.len()] != command {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "malformed admin command",
                ));
            }
            self.pos += command.len();
            return Ok(Some(incoming));
        }
        let len = u32::from_be_bytes(avail[..4].try_into().unwrap());
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
            ));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[4..total].to_vec();
        self.pos += total;
        Ok(Some(Incoming::Frame(payload)))
    }
}

/// Reads a message head: returns 0 on clean EOF before the first byte,
/// propagates `WouldBlock`/`TimedOut` only while no byte has arrived, and
/// switches to patient mode once the message has started.
fn read_head<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    let mut deadline: Option<std::time::Instant> = None;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(0);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn message"));
            }
            Ok(n) => {
                got += n;
                deadline.get_or_insert_with(|| std::time::Instant::now() + MID_MESSAGE_PATIENCE);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if got > 0
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                if deadline.is_some_and(|d| std::time::Instant::now() > d) {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "stalled mid-message",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(buf.len())
}

/// Fills `buf` fully, retrying timeouts (mid-message reads) up to the
/// patience bound. EOF is always an error here.
fn read_patiently<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<()> {
    let deadline = std::time::Instant::now() + MID_MESSAGE_PATIENCE;
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "torn message"));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if std::time::Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "stalled mid-message",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpbs::{Step, Transfer};

    fn sample_request() -> PlanRequest {
        let mut t = TrafficMatrix::zeros(3, 2);
        t.set(0, 0, 1_000_000);
        t.set(0, 1, 2_000_000);
        t.set(2, 1, 500_000);
        PlanRequest {
            wire_version: VERSION,
            request_id: 42,
            algo: Algo::Oggp,
            platform: WirePlatform {
                n1: 3,
                n2: 2,
                t1: 100.0,
                t2: 100.0,
                backbone: 200.0,
                beta_seconds: 0.05,
            },
            matrix: CsrMatrix::from_traffic(&t),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = sample_request();
        let bytes = encode_request(&req);
        let payload = &bytes[4..];
        assert_eq!(
            u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize,
            payload.len()
        );
        let back = decode_request(payload).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn csr_round_trips_dense() {
        let mut t = TrafficMatrix::zeros(4, 4);
        t.set(1, 3, 7);
        t.set(3, 0, 9);
        let csr = CsrMatrix::from_traffic(&t);
        assert_eq!(csr.cells(), 16);
        csr.validate().unwrap();
        assert_eq!(csr.to_traffic(), t);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_request(&sample_request());
        bytes[4] = b'X';
        let err = decode_request(&bytes[4..]).unwrap_err();
        assert!(err.0.contains("magic"), "{err}");
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_request(&sample_request());
        bytes[9] = 99;
        let err = decode_request(&bytes[4..]).unwrap_err();
        assert!(err.0.contains("version"), "{err}");
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_request(&sample_request());
        for cut in [5, 10, 20, bytes.len() - 5] {
            assert!(decode_request(&bytes[4..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unsorted_columns_rejected() {
        let m = CsrMatrix {
            n1: 1,
            n2: 3,
            row_ptr: vec![0, 2],
            cols: vec![2, 1],
            bytes: vec![5, 5],
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn zero_bytes_rejected() {
        let m = CsrMatrix {
            n1: 1,
            n2: 3,
            row_ptr: vec![0, 1],
            cols: vec![0],
            bytes: vec![0],
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn responses_round_trip() {
        let schedule = Schedule {
            steps: vec![Step {
                transfers: vec![Transfer {
                    edge: bipartite::EdgeId(3),
                    amount: 17,
                }],
            }],
            beta: 2,
        };
        let mut work = [0u64; COUNTER_COUNT];
        work[0] = 5;
        let cases = [
            PlanResponse::Ok {
                request_id: 7,
                cached: true,
                schedule,
                cost: 19,
                lower_bound: 17,
                work,
                server_id: 991,
            },
            PlanResponse::Rejected {
                request_id: 8,
                reason: RejectReason::QueueFull,
            },
            PlanResponse::Rejected {
                request_id: 9,
                reason: RejectReason::MatrixTooLarge,
            },
            PlanResponse::Error {
                request_id: 10,
                message: "bad things".into(),
            },
        ];
        for case in &cases {
            let bytes = encode_response(case, VERSION);
            let back = decode_response(&bytes[4..]).unwrap();
            assert_eq!(&back, case);
        }
    }

    fn sample_session_ops() -> Vec<SessionOp> {
        let plan = sample_request();
        vec![
            SessionOp::Open {
                algo: plan.algo,
                platform: plan.platform,
                matrix: plan.matrix,
            },
            SessionOp::Delta {
                session_id: 17,
                deltas: vec![
                    WireDelta::SetCell {
                        sender: 1,
                        receiver: 0,
                        bytes: 3_000_000,
                    },
                    WireDelta::SetCell {
                        sender: 0,
                        receiver: 1,
                        bytes: 0,
                    },
                    WireDelta::GrowNodes {
                        senders: 2,
                        receivers: 0,
                    },
                    WireDelta::DropSender(3),
                    WireDelta::DropReceiver(1),
                ],
            },
            SessionOp::Commit { session_id: 17 },
            SessionOp::Close { session_id: 17 },
        ]
    }

    #[test]
    fn session_requests_round_trip() {
        for (i, op) in sample_session_ops().into_iter().enumerate() {
            let req = SessionRequest {
                wire_version: VERSION,
                request_id: 100 + i as u64,
                op,
            };
            let bytes = encode_session_request(&req);
            match decode_frame(&bytes[4..]).unwrap() {
                Request::Session(back) => assert_eq!(back, req),
                other => panic!("expected a session op, got {other:?}"),
            }
        }
    }

    #[test]
    fn session_kinds_require_v3() {
        for op in sample_session_ops() {
            let req = SessionRequest {
                wire_version: VERSION,
                request_id: 9,
                op,
            };
            for old in [1u16, 2] {
                let mut bytes = encode_session_request(&req);
                // Version lives right after the 4-byte length prefix and
                // 4-byte magic; rewrite it to an older protocol level.
                bytes[8..10].copy_from_slice(&old.to_be_bytes());
                let err = decode_frame(&bytes[4..]).unwrap_err();
                assert!(err.0.contains("requires protocol version"), "{err}");
            }
        }
    }

    #[test]
    fn decode_frame_classifies_plans_and_decode_request_refuses_sessions() {
        let plan = sample_request();
        let bytes = encode_request(&plan);
        match decode_frame(&bytes[4..]).unwrap() {
            Request::Plan(back) => assert_eq!(back, plan),
            other => panic!("expected a plan, got {other:?}"),
        }

        let session = SessionRequest {
            wire_version: VERSION,
            request_id: 5,
            op: SessionOp::Close { session_id: 1 },
        };
        let bytes = encode_session_request(&session);
        let err = decode_request(&bytes[4..]).unwrap_err();
        assert!(err.0.contains("session"), "{err}");
    }

    #[test]
    fn session_responses_round_trip() {
        let mut work = [0u64; COUNTER_COUNT];
        work[3] = 11;
        let cases = [
            PlanResponse::Session {
                request_id: 21,
                session_id: 4,
                generation: 9,
                level: SessionLevel::RePeel,
                schedule: Schedule {
                    steps: vec![Step {
                        transfers: vec![Transfer {
                            edge: bipartite::EdgeId(0),
                            amount: 5,
                        }],
                    }],
                    beta: 1,
                },
                cost: 6,
                lower_bound: 6,
                work,
                server_id: 77,
            },
            PlanResponse::SessionRejected {
                request_id: 22,
                session_id: 0,
                reason: SessionRejectReason::TableFull,
            },
            PlanResponse::SessionRejected {
                request_id: 23,
                session_id: 99,
                reason: SessionRejectReason::UnknownSession,
            },
        ];
        for case in &cases {
            let bytes = encode_response(case, VERSION);
            let back = decode_response(&bytes[4..]).unwrap();
            assert_eq!(&back, case);
        }
    }

    #[test]
    fn every_session_level_survives_the_wire() {
        for level in [
            SessionLevel::Opened,
            SessionLevel::Repair,
            SessionLevel::RePeel,
            SessionLevel::Cold,
            SessionLevel::Committed,
            SessionLevel::Closed,
        ] {
            assert_eq!(SessionLevel::from_u8(level as u8).unwrap(), level);
        }
        assert!(SessionLevel::from_u8(6).is_err());
    }

    #[test]
    fn v1_round_trips_without_server_id() {
        // A v1 request encodes with version 1 and decodes back unchanged —
        // old clients keep working against the v2 server.
        let mut req = sample_request();
        req.wire_version = 1;
        let bytes = encode_request(&req);
        let back = decode_request(&bytes[4..]).unwrap();
        assert_eq!(back, req);

        // A v1-encoded Ok response omits the server id; decoding yields 0.
        let resp = PlanResponse::Ok {
            request_id: 7,
            cached: false,
            schedule: Schedule {
                steps: vec![],
                beta: 1,
            },
            cost: 1,
            lower_bound: 1,
            work: [0u64; COUNTER_COUNT],
            server_id: 555,
        };
        let v1 = encode_response(&resp, 1);
        let v2 = encode_response(&resp, 2);
        assert_eq!(v2.len(), v1.len() + 8, "v2 appends exactly the id");
        match decode_response(&v1[4..]).unwrap() {
            PlanResponse::Ok { server_id, .. } => assert_eq!(server_id, 0),
            other => panic!("expected Ok, got {other:?}"),
        }
        match decode_response(&v2[4..]).unwrap() {
            PlanResponse::Ok { server_id, .. } => assert_eq!(server_id, 555),
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn schedule_encoding_is_deterministic() {
        let s = Schedule {
            steps: vec![
                Step {
                    transfers: vec![
                        Transfer {
                            edge: bipartite::EdgeId(0),
                            amount: 4,
                        },
                        Transfer {
                            edge: bipartite::EdgeId(2),
                            amount: 9,
                        },
                    ],
                },
                Step { transfers: vec![] },
            ],
            beta: 1,
        };
        assert_eq!(encode_schedule(&s), encode_schedule(&s.clone()));
    }

    #[test]
    fn incoming_sniffs_stats_and_frames() {
        let mut r = STATS_COMMAND;
        assert!(matches!(read_incoming(&mut r).unwrap(), Incoming::Stats));
        let mut r = METRICS_COMMAND;
        assert!(matches!(read_incoming(&mut r).unwrap(), Incoming::Metrics));
        let mut r = FLIGHT_COMMAND;
        assert!(matches!(read_incoming(&mut r).unwrap(), Incoming::Flight));
        // A torn admin command is an error, not a frame.
        let mut r: &[u8] = b"METRxxx\n";
        assert!(read_incoming(&mut r).is_err());

        let framed = encode_response(
            &PlanResponse::Rejected {
                request_id: 1,
                reason: RejectReason::QueueFull,
            },
            VERSION,
        );
        let mut r = &framed[..];
        match read_incoming(&mut r).unwrap() {
            Incoming::Frame(p) => {
                assert_eq!(p.len(), framed.len() - 4);
            }
            other => panic!("expected frame, got {other:?}"),
        }

        let empty: &[u8] = &[];
        let mut r = empty;
        assert!(matches!(read_incoming(&mut r).unwrap(), Incoming::Eof));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut r = &buf[..];
        assert!(read_incoming(&mut r).is_err());
    }

    #[test]
    fn decoder_resumes_across_one_byte_feeds() {
        let framed = encode_request(&sample_request());
        let mut d = FrameDecoder::new();
        for (i, b) in framed.iter().enumerate() {
            d.extend(&[*b]);
            let out = d.poll().unwrap();
            if i + 1 < framed.len() {
                assert!(out.is_none(), "message completed early at byte {i}");
                assert!(d.is_mid_message());
            } else {
                match out {
                    Some(Incoming::Frame(p)) => assert_eq!(p, &framed[4..]),
                    other => panic!("expected frame, got {other:?}"),
                }
            }
        }
        assert!(!d.is_mid_message());
    }

    #[test]
    fn decoder_splits_coalesced_messages() {
        let framed = encode_request(&sample_request());
        let mut blob = Vec::new();
        blob.extend_from_slice(&framed);
        blob.extend_from_slice(STATS_COMMAND);
        blob.extend_from_slice(&framed);
        let mut d = FrameDecoder::new();
        d.extend(&blob);
        assert!(matches!(d.poll().unwrap(), Some(Incoming::Frame(_))));
        assert!(matches!(d.poll().unwrap(), Some(Incoming::Stats)));
        assert!(matches!(d.poll().unwrap(), Some(Incoming::Frame(_))));
        assert!(d.poll().unwrap().is_none());
        assert!(!d.is_mid_message());
    }

    #[test]
    fn decoder_rejects_oversize_and_torn_admin_and_stays_poisoned() {
        let mut d = FrameDecoder::new();
        d.extend(&(MAX_FRAME + 1).to_be_bytes());
        assert!(d.poll().is_err());
        // Sticky: even valid bytes are refused after an error.
        d.extend(STATS_COMMAND);
        assert!(d.poll().is_err());

        let mut d = FrameDecoder::new();
        d.extend(b"METRxxx\n");
        assert!(d.poll().is_err());
    }

    #[test]
    fn decoder_admin_prefix_waits_for_tail() {
        let mut d = FrameDecoder::new();
        d.extend(b"FLIG");
        assert!(d.poll().unwrap().is_none());
        assert!(d.is_mid_message());
        d.extend(b"HT\n");
        assert!(matches!(d.poll().unwrap(), Some(Incoming::Flight)));
        assert!(!d.is_mid_message());
    }
}
