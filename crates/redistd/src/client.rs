//! A small blocking client for the wire protocol — used by `redistload`,
//! the loopback tests, and anyone embedding a redistribution client.

use crate::wire::{self, Algo, CsrMatrix, PlanRequest, PlanResponse, WirePlatform};
use kpbs::{Platform, TrafficMatrix};
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected planning client. One request is in flight at a time
/// (closed-loop); open more clients for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one planning request and blocks for its response.
    pub fn plan(&mut self, req: &PlanRequest) -> io::Result<PlanResponse> {
        wire::write_all(&mut self.stream, &wire::encode_request(req))?;
        let payload = wire::read_frame(&mut self.stream)?;
        wire::decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Builds a [`PlanRequest`] from the native types (the canonical CSR
/// construction — identical matrices always encode identically).
pub fn request(
    request_id: u64,
    algo: Algo,
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta_seconds: f64,
) -> PlanRequest {
    PlanRequest {
        request_id,
        algo,
        platform: WirePlatform {
            n1: platform.n1 as u32,
            n2: platform.n2 as u32,
            t1: platform.t1,
            t2: platform.t2,
            backbone: platform.backbone,
            beta_seconds,
        },
        matrix: CsrMatrix::from_traffic(traffic),
    }
}

/// Fetches the plaintext `STATS` report over a dedicated connection (the
/// server answers and closes).
pub fn fetch_stats<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    wire::write_all(&mut stream, wire::STATS_COMMAND)?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

/// Pulls `key: value` integers out of a `STATS` report (helper for tools
/// asserting on server state).
pub fn stats_field(report: &str, key: &str) -> Option<u64> {
    report.lines().find_map(|l| {
        let (k, v) = l.split_once(": ")?;
        (k == key).then(|| v.trim().parse().ok())?
    })
}

/// Like [`stats_field`] but for fractional fields (`cache_hit_rate`,
/// `service_us_mean`).
pub fn stats_field_f64(report: &str, key: &str) -> Option<f64> {
    report.lines().find_map(|l| {
        let (k, v) = l.split_once(": ")?;
        (k == key).then(|| v.trim().parse().ok())?
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_field_parses_integers() {
        let report = "redistd stats\nserved: 12\ncache_hit_rate: 0.5000\nqueue_depth: 0\n";
        assert_eq!(stats_field(report, "served"), Some(12));
        assert_eq!(stats_field(report, "queue_depth"), Some(0));
        assert_eq!(stats_field(report, "cache_hit_rate"), None); // not an int
        assert_eq!(stats_field(report, "missing"), None);
    }

    #[test]
    fn stats_field_f64_parses_fractions_and_integers() {
        let report = "redistd stats\nserved: 12\ncache_hit_rate: 0.5000\nqueue_depth: 0\n";
        assert_eq!(stats_field_f64(report, "cache_hit_rate"), Some(0.5));
        assert_eq!(stats_field_f64(report, "served"), Some(12.0));
        assert_eq!(stats_field_f64(report, "missing"), None);
    }
}
