//! A small blocking client for the wire protocol — used by `redistload`,
//! the loopback tests, and anyone embedding a redistribution client.

use crate::wire::{
    self, Algo, CsrMatrix, PlanRequest, PlanResponse, SessionOp, SessionRequest, WireDelta,
    WirePlatform,
};
use kpbs::{Platform, TrafficMatrix};
use std::io::{self, Read};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected planning client. One request is in flight at a time
/// (closed-loop); open more clients for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects with retries under capped exponential backoff (1 ms
    /// doubling to 200 ms). At 1024 simultaneous connects even a raised
    /// listen backlog drops some SYNs; a load generator should retry
    /// around those instead of reporting them as correctness failures.
    pub fn connect_with_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        attempts: u32,
    ) -> io::Result<Client> {
        let attempts = attempts.max(1);
        let mut delay = std::time::Duration::from_millis(1);
        let mut last = None;
        for attempt in 0..attempts {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(delay);
                        delay = (delay * 2).min(std::time::Duration::from_millis(200));
                    }
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Sends one planning request and blocks for its response.
    pub fn plan(&mut self, req: &PlanRequest) -> io::Result<PlanResponse> {
        wire::write_all(&mut self.stream, &wire::encode_request(req))?;
        self.read_response()
    }

    /// Sends one session op (v3 `OPEN`/`DELTA`/`COMMIT`/`CLOSE`) and
    /// blocks for its response. Build ops with [`session_open`],
    /// [`session_delta`], [`session_commit`], [`session_close`].
    pub fn session(&mut self, req: &SessionRequest) -> io::Result<PlanResponse> {
        wire::write_all(&mut self.stream, &wire::encode_session_request(req))?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<PlanResponse> {
        let payload = wire::read_frame(&mut self.stream)?;
        wire::decode_response(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Builds a [`PlanRequest`] from the native types (the canonical CSR
/// construction — identical matrices always encode identically).
pub fn request(
    request_id: u64,
    algo: Algo,
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta_seconds: f64,
) -> PlanRequest {
    PlanRequest {
        wire_version: wire::VERSION,
        request_id,
        algo,
        platform: WirePlatform {
            n1: platform.n1 as u32,
            n2: platform.n2 as u32,
            t1: platform.t1,
            t2: platform.t2,
            backbone: platform.backbone,
            beta_seconds,
        },
        matrix: CsrMatrix::from_traffic(traffic),
    }
}

/// Builds the `OPEN` op for a streaming-admission session (sessions are
/// OGGP-only — incremental repair reuses its warm matching engine).
pub fn session_open(
    request_id: u64,
    traffic: &TrafficMatrix,
    platform: &Platform,
    beta_seconds: f64,
) -> SessionRequest {
    SessionRequest {
        wire_version: wire::VERSION,
        request_id,
        op: SessionOp::Open {
            algo: Algo::Oggp,
            platform: WirePlatform {
                n1: platform.n1 as u32,
                n2: platform.n2 as u32,
                t1: platform.t1,
                t2: platform.t2,
                backbone: platform.backbone,
                beta_seconds,
            },
            matrix: CsrMatrix::from_traffic(traffic),
        },
    }
}

/// Builds a `DELTA` op applying `deltas` (in order) to a live session.
pub fn session_delta(request_id: u64, session_id: u64, deltas: Vec<WireDelta>) -> SessionRequest {
    SessionRequest {
        wire_version: wire::VERSION,
        request_id,
        op: SessionOp::Delta { session_id, deltas },
    }
}

/// Builds a `COMMIT` op publishing the session's current plan into the
/// server's shared plan cache.
pub fn session_commit(request_id: u64, session_id: u64) -> SessionRequest {
    SessionRequest {
        wire_version: wire::VERSION,
        request_id,
        op: SessionOp::Commit { session_id },
    }
}

/// Builds a `CLOSE` op freeing the session's slot.
pub fn session_close(request_id: u64, session_id: u64) -> SessionRequest {
    SessionRequest {
        wire_version: wire::VERSION,
        request_id,
        op: SessionOp::Close { session_id },
    }
}

fn fetch_admin<A: ToSocketAddrs>(addr: A, command: &[u8]) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    wire::write_all(&mut stream, command)?;
    let mut out = String::new();
    stream.read_to_string(&mut out)?;
    Ok(out)
}

/// Fetches the plaintext `STATS` report over a dedicated connection (the
/// server answers and closes).
pub fn fetch_stats<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    fetch_admin(addr, wire::STATS_COMMAND)
}

/// Fetches the Prometheus text exposition (`METRICS` admin command).
pub fn fetch_metrics<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    fetch_admin(addr, wire::METRICS_COMMAND)
}

/// Fetches the flight-recorder dump (`FLIGHT` admin command).
pub fn fetch_flight<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    fetch_admin(addr, wire::FLIGHT_COMMAND)
}

/// Pulls `key: value` integers out of a `STATS` report (helper for tools
/// asserting on server state).
///
/// The first line carrying `key` decides the result: a malformed value on
/// that line yields `None` rather than silently falling through to a later
/// duplicate — a report that repeats a key is itself suspect, and scanning
/// on would let a corrupted line go unnoticed.
pub fn stats_field(report: &str, key: &str) -> Option<u64> {
    first_field(report, key)?.trim().parse().ok()
}

/// Like [`stats_field`] but for fractional fields (`cache_hit_rate`,
/// `service_us_mean`). Non-finite values (`NaN`, `inf`) — which a healthy
/// server never emits — are rejected as `None` so callers can't propagate
/// them into comparisons that silently come out false.
pub fn stats_field_f64(report: &str, key: &str) -> Option<f64> {
    let v: f64 = first_field(report, key)?.trim().parse().ok()?;
    v.is_finite().then_some(v)
}

/// The raw value of the first line matching `key`, or `None` when absent.
fn first_field<'a>(report: &'a str, key: &str) -> Option<&'a str> {
    report.lines().find_map(|l| {
        let (k, v) = l.split_once(": ")?;
        (k == key).then_some(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_with_retry_gives_up_after_attempts() {
        // A port nothing listens on: refused immediately, so three
        // attempts (1 + 2 ms of backoff) still finish fast.
        let addr: std::net::SocketAddr = "127.0.0.1:1".parse().unwrap();
        let start = std::time::Instant::now();
        assert!(Client::connect_with_retry(addr, 3).is_err());
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }

    #[test]
    fn connect_with_retry_succeeds_first_try() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        assert!(Client::connect_with_retry(addr, 3).is_ok());
    }

    #[test]
    fn stats_field_parses_integers() {
        let report = "redistd stats\nserved: 12\ncache_hit_rate: 0.5000\nqueue_depth: 0\n";
        assert_eq!(stats_field(report, "served"), Some(12));
        assert_eq!(stats_field(report, "queue_depth"), Some(0));
        assert_eq!(stats_field(report, "cache_hit_rate"), None); // not an int
        assert_eq!(stats_field(report, "missing"), None);
    }

    #[test]
    fn stats_field_f64_parses_fractions_and_integers() {
        let report = "redistd stats\nserved: 12\ncache_hit_rate: 0.5000\nqueue_depth: 0\n";
        assert_eq!(stats_field_f64(report, "cache_hit_rate"), Some(0.5));
        assert_eq!(stats_field_f64(report, "served"), Some(12.0));
        assert_eq!(stats_field_f64(report, "missing"), None);
    }

    #[test]
    fn stats_field_f64_rejects_non_finite_values() {
        let report = "a: NaN\nb: inf\nc: -inf\nd: 1.5\n";
        assert_eq!(stats_field_f64(report, "a"), None);
        assert_eq!(stats_field_f64(report, "b"), None);
        assert_eq!(stats_field_f64(report, "c"), None);
        assert_eq!(stats_field_f64(report, "d"), Some(1.5));
    }

    #[test]
    fn stats_field_first_occurrence_wins_on_duplicates() {
        // The first matching line decides — even when it is malformed and a
        // later duplicate would parse. A repeated key means the report is
        // corrupt; falling through would mask that.
        let report = "x: garbage\nx: 7\ny: 1\ny: 2\n";
        assert_eq!(stats_field(report, "x"), None);
        assert_eq!(stats_field_f64(report, "x"), None);
        assert_eq!(stats_field(report, "y"), Some(1));
        assert_eq!(stats_field_f64(report, "y"), Some(1.0));
    }

    #[test]
    fn stats_field_edge_cases() {
        // Missing separator, empty report, key-is-prefix-of-another.
        assert_eq!(stats_field("", "k"), None);
        assert_eq!(stats_field("k 5\n", "k"), None);
        let report = "served_total: 9\nserved: 3\n";
        assert_eq!(stats_field(report, "served"), Some(3));
        assert_eq!(stats_field(report, "served_total"), Some(9));
    }
}
