//! A sharded plan cache with a **lock-free read path**.
//!
//! Keys are the 128-bit canonical fingerprints of [`mod@kpbs::fingerprint`]
//! (algorithm tag mixed in via [`kpbs::cache_key`]), values are immutable
//! `Arc`s shared with whoever is answering the request. Because the
//! planners are deterministic functions of the canonical instance, a hit
//! is guaranteed byte-identical to a cold plan (the loopback test verifies
//! exactly that) — which is also why the read path may be relaxed about
//! *which* version of an entry it observes: every version of a key's value
//! encodes the same bytes.
//!
//! # Read path: one atomic load + hash probe + `Arc` clone
//!
//! Each shard *publishes* an open-addressing hash table behind an
//! `AtomicPtr`. Readers pin a reclamation epoch (one CAS into a reader
//! slot), load the published table pointer, probe linearly over
//! `AtomicPtr` slots to the entry, set its second-chance reference bit,
//! clone the value `Arc`, and unpin. No mutex is taken and nothing is
//! written besides the pin slot, the reference bit and the hit counter —
//! a hit costs a handful of atomics regardless of how many connections
//! are hammering the same shard.
//!
//! # Write path: serialized per shard, epoch-based reclamation
//!
//! Writers (cache misses inserting a fresh plan) serialize on a per-shard
//! mutex. Inserts mutate the published table in place — storing a fresh
//! entry pointer into an empty/tombstone slot is invisible to concurrent
//! readers except as a normal hit/miss — and deletions (evictions,
//! same-key refreshes) replace the slot with a tombstone / new pointer and
//! **retire** the old allocation instead of freeing it. A retired
//! allocation is stamped with the global epoch at retire time and freed
//! only once every pinned reader has announced a *later* epoch, which
//! proves (see the safety argument below) the reader cannot be holding
//! the retired pointer. When tombstones accumulate past ¾ occupancy the
//! writer rebuilds a clean table, publishes it with one pointer swap, and
//! retires the old table the same way. This is the epoch-reclamation
//! idiom of crossbeam-epoch (and of lock-free graph stores built on it),
//! reduced to the minimum a std-only crate needs; DESIGN.md §15 carries
//! the full safety argument.
//!
//! # Eviction: second-chance clock, O(1) amortized
//!
//! The writer keeps the shard's keys in a clock ring (`VecDeque`). A hit
//! sets the entry's reference bit; the evictor pops the ring's front,
//! re-queues entries whose bit is set (clearing it — the "second
//! chance"), and evicts the first entry found with a clear bit. Each
//! re-queue is paid for by the hit that set the bit, so eviction is O(1)
//! amortized — replacing the old O(shard-size) min-stamp scan. Entries
//! are inserted with a clear bit, so the victim order is insertion order
//! skipping (and demoting) anything touched since the hand last passed;
//! `eviction_order_is_second_chance_clock` pins it.

use std::cell::Cell;
use std::collections::VecDeque;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Reader-slot value meaning "free" (no reader pinned through this slot).
const SLOT_FREE: u64 = u64::MAX;

/// Reader slots available per cache. Readers are worker/IO threads — a
/// handful — so exhaustion is effectively impossible; if it ever happens
/// the reader falls back to a correct (mutex-guarded) slow path.
const READER_SLOTS: usize = 128;

thread_local! {
    /// Hint: the slot index this thread last pinned successfully, so the
    /// acquire scan usually succeeds on its first CAS.
    static PREFERRED_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// The tombstone sentinel: a slot whose entry was deleted but whose probe
/// chain must stay intact. A dangling well-aligned non-null pointer the
/// allocator can never hand out; never dereferenced.
fn tomb<V>() -> *mut Entry<V> {
    std::ptr::dangling_mut()
}

fn is_live<V>(p: *mut Entry<V>) -> bool {
    !p.is_null() && p != tomb::<V>()
}

/// Mixes a 128-bit fingerprint into a table slot hash. The shard index
/// uses the key's low bits, so the slot hash folds both halves through a
/// multiplier to stay independent of it.
fn slot_hash(key: u128) -> usize {
    let x = (key as u64) ^ ((key >> 64) as u64).rotate_left(31);
    let h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h ^ (h >> 32)) as usize
}

/// A cached entry. Immutable apart from the clock reference bit.
struct Entry<V> {
    key: u128,
    /// Second-chance bit: set by readers on a hit, cleared (and acted on)
    /// by the evicting writer.
    referenced: AtomicBool,
    value: Arc<V>,
}

/// The published open-addressing table: linear probing over atomic entry
/// pointers. Slot count is fixed at ≥ 2× shard capacity (power of two),
/// so the writer's ¾-occupancy rebuild guarantee keeps at least one
/// genuinely-empty slot on every probe path and probes terminate.
struct Table<V> {
    mask: usize,
    slots: Box<[AtomicPtr<Entry<V>>]>,
}

impl<V> Table<V> {
    fn new(slot_count: usize) -> Table<V> {
        Table {
            mask: slot_count - 1,
            slots: (0..slot_count)
                .map(|_| AtomicPtr::new(ptr::null_mut()))
                .collect(),
        }
    }

    /// Writer-side probe: the slot currently holding `key`, if resident.
    fn find_slot(&self, key: u128) -> Option<usize> {
        let mut idx = slot_hash(key) & self.mask;
        loop {
            let p = self.slots[idx].load(Ordering::Relaxed);
            if p.is_null() {
                return None;
            }
            if is_live(p) && unsafe { (*p).key } == key {
                return Some(idx);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Writer-side probe for an insertion point of an *absent* key: the
    /// first tombstone on the probe path (reusing it keeps the chain
    /// short), else the terminating empty slot. Returns `(index, was
    /// genuinely empty)`.
    fn insert_slot(&self, key: u128) -> (usize, bool) {
        let mut idx = slot_hash(key) & self.mask;
        let mut first_tomb = None;
        loop {
            let p = self.slots[idx].load(Ordering::Relaxed);
            if p.is_null() {
                return match first_tomb {
                    Some(t) => (t, false),
                    None => (idx, true),
                };
            }
            if p == tomb::<V>() && first_tomb.is_none() {
                first_tomb = Some(idx);
            }
            idx = (idx + 1) & self.mask;
        }
    }
}

/// A retired allocation awaiting quiescence before it can be freed.
enum Retired<V> {
    Entry(*mut Entry<V>),
    Table(*mut Table<V>),
}

impl<V> Retired<V> {
    /// Frees the allocation. Caller must have proven no reader can still
    /// hold the pointer (epoch quiescence, or exclusive access in `Drop`).
    /// Retired tables free only their slot array — the entries they point
    /// at either live on in the successor table or were retired (and are
    /// freed) separately.
    unsafe fn free(self) {
        match self {
            Retired::Entry(p) => drop(Box::from_raw(p)),
            Retired::Table(p) => drop(Box::from_raw(p)),
        }
    }
}

/// Writer-side shard state, all guarded by the shard mutex.
struct WriterState<V> {
    /// Clock ring: every resident key exactly once, hand at the front.
    ring: VecDeque<u128>,
    /// Retired allocations with their retire-epoch stamps.
    retired: Vec<(Retired<V>, u64)>,
    /// Resident entries.
    live: usize,
    /// Occupied slots (live + tombstones) in the published table.
    used: usize,
}

struct Shard<V> {
    /// The published table readers probe. Null until the first insert.
    published: AtomicPtr<Table<V>>,
    writer: Mutex<WriterState<V>>,
    /// Mirror of `WriterState::live` readable without the mutex.
    len: AtomicUsize,
}

/// The reader-pin registry: one atomic per slot, holding `SLOT_FREE` or
/// the epoch the pinned reader announced.
struct Readers {
    slots: Box<[AtomicU64]>,
}

impl Readers {
    fn new(slot_count: usize) -> Readers {
        Readers {
            slots: (0..slot_count).map(|_| AtomicU64::new(SLOT_FREE)).collect(),
        }
    }

    /// Announces `epoch` in a free slot. The SeqCst CAS orders the
    /// announcement before every subsequent table/slot load, which is what
    /// the reclamation proof leans on. `None` when all slots are taken.
    fn pin(&self, epoch: &AtomicU64) -> Option<ReadPin<'_>> {
        let e = epoch.load(Ordering::SeqCst);
        let n = self.slots.len();
        let start = PREFERRED_SLOT.with(|p| p.get()) % n;
        for i in 0..n {
            let idx = (start + i) % n;
            if self.slots[idx]
                .compare_exchange(SLOT_FREE, e, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                PREFERRED_SLOT.with(|p| p.set(idx));
                return Some(ReadPin { readers: self, idx });
            }
        }
        None
    }

    /// True when no pinned reader could still hold a pointer retired at
    /// epoch `r`: every occupied slot announces a strictly later epoch.
    fn quiesced(&self, r: u64) -> bool {
        self.slots.iter().all(|s| {
            let v = s.load(Ordering::SeqCst);
            v == SLOT_FREE || v > r
        })
    }
}

struct ReadPin<'a> {
    readers: &'a Readers,
    idx: usize,
}

impl Drop for ReadPin<'_> {
    fn drop(&mut self) {
        self.readers.slots[self.idx].store(SLOT_FREE, Ordering::Release);
    }
}

/// A sharded, bounded map from fingerprint to plan with a lock-free read
/// path and second-chance-clock eviction.
pub struct ShardedLru<V> {
    shards: Box<[Shard<V>]>,
    per_shard_capacity: usize,
    /// Fixed slot count of every published table (power of two ≥ 2×cap).
    table_slots: usize,
    /// Global reclamation epoch, bumped once per retire.
    epoch: AtomicU64,
    readers: Readers,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

// Raw pointers in `WriterState::retired` / `Shard::published` inhibit the
// auto traits; sharing is sound because every pointer is either published
// (reachable only through the epoch-protected read path) or retired
// (owned by the mutex-guarded writer state).
unsafe impl<V: Send + Sync> Send for ShardedLru<V> {}
unsafe impl<V: Send + Sync> Sync for ShardedLru<V> {}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<V> ShardedLru<V> {
    /// Creates a cache of roughly `capacity` total entries spread over
    /// `shards` (rounded up to a power of two) shards. A `capacity` of 0
    /// disables caching: every lookup misses, inserts are dropped.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_reader_slots(capacity, shards, READER_SLOTS)
    }

    /// [`ShardedLru::new`] with an explicit reader-slot count — exposed so
    /// tests can exhaust the registry and exercise the locked fallback.
    fn with_reader_slots(capacity: usize, shards: usize, reader_slots: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.div_ceil(shard_count);
        ShardedLru {
            shards: (0..shard_count)
                .map(|_| Shard {
                    published: AtomicPtr::new(ptr::null_mut()),
                    writer: Mutex::new(WriterState {
                        ring: VecDeque::new(),
                        retired: Vec::new(),
                        live: 0,
                        used: 0,
                    }),
                    len: AtomicUsize::new(0),
                })
                .collect(),
            table_slots: (per_shard_capacity * 2).next_power_of_two().max(4),
            per_shard_capacity,
            epoch: AtomicU64::new(0),
            readers: Readers::new(reader_slots.max(1)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: u128) -> &Shard<V> {
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    /// Probes the published table for `key`, setting the reference bit and
    /// cloning the value on a hit.
    ///
    /// # Safety
    /// The caller must guarantee the table and its entries cannot be freed
    /// for the duration of the call — either by holding a [`ReadPin`]
    /// announced *before* loading the published pointer, or by holding the
    /// shard's writer mutex.
    unsafe fn probe(table: *const Table<V>, key: u128) -> Option<Arc<V>> {
        let table = table.as_ref()?;
        let mut idx = slot_hash(key) & table.mask;
        loop {
            let p = table.slots[idx].load(Ordering::SeqCst);
            if p.is_null() {
                return None;
            }
            if is_live(p) {
                let e = &*p;
                if e.key == key {
                    e.referenced.store(true, Ordering::Relaxed);
                    return Some(e.value.clone());
                }
            }
            idx = (idx + 1) & table.mask;
        }
    }

    /// Looks up `key`. Lock-free: pin, one published-pointer load, linear
    /// probe, `Arc` clone, unpin. A hit marks the entry's second-chance
    /// bit (the lock-free stand-in for LRU recency refresh).
    pub fn get(&self, key: u128) -> Option<Arc<V>> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = self.shard_of(key);
        let found = match self.readers.pin(&self.epoch) {
            Some(pin) => {
                let t = shard.published.load(Ordering::SeqCst);
                // SAFETY: the pin was announced before the table load, so
                // the writer's quiescence check keeps `t` (and any entry
                // reachable from it) alive until `pin` drops.
                let v = unsafe { Self::probe(t, key) };
                drop(pin);
                v
            }
            None => {
                // Registry exhausted (only reachable with hundreds of
                // simultaneous readers): read under the shard's writer
                // mutex, which excludes every free of this shard's memory.
                let _w = shard.writer.lock().unwrap();
                let t = shard.published.load(Ordering::SeqCst);
                // SAFETY: this shard's retire/free runs only under the
                // writer mutex we hold.
                unsafe { Self::probe(t, key) }
            }
        };
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stamps `item` with the current epoch and queues it for freeing
    /// once readers quiesce.
    fn retire(&self, w: &mut WriterState<V>, item: Retired<V>) {
        let r = self.epoch.fetch_add(1, Ordering::SeqCst);
        w.retired.push((item, r));
    }

    /// Frees every retired allocation whose stamp the readers have moved
    /// past. Called on each insert; anything still pending is freed by a
    /// later insert or by `Drop`.
    fn collect(&self, w: &mut WriterState<V>) {
        w.retired.retain(|(item, r)| {
            if self.readers.quiesced(*r) {
                // SAFETY: no pinned reader announced an epoch ≤ r, so per
                // the reclamation argument none can hold this pointer.
                unsafe {
                    match item {
                        Retired::Entry(p) => drop(Box::from_raw(*p)),
                        Retired::Table(p) => drop(Box::from_raw(*p)),
                    }
                }
                false
            } else {
                true
            }
        });
    }

    /// Second-chance clock eviction: demote referenced entries, evict the
    /// first unreferenced one. O(1) amortized — every demotion is paid for
    /// by the hit that set the bit.
    fn clock_evict(&self, table: &Table<V>, w: &mut WriterState<V>) {
        loop {
            let key = w.ring.pop_front().expect("ring tracks every resident key");
            let idx = table.find_slot(key).expect("resident key is in the table");
            let p = table.slots[idx].load(Ordering::Relaxed);
            // SAFETY: `p` is live (find_slot) and cannot be freed while we
            // hold the writer mutex.
            if unsafe { (*p).referenced.swap(false, Ordering::Relaxed) } {
                w.ring.push_back(key);
                continue;
            }
            table.slots[idx].store(tomb::<V>(), Ordering::SeqCst);
            self.retire(w, Retired::Entry(p));
            w.live -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }

    /// Rebuilds a tombstone-free table and publishes it with one swap,
    /// retiring the old one. Live entries are carried over by pointer.
    fn rebuild(&self, shard: &Shard<V>, old: *mut Table<V>, w: &mut WriterState<V>) {
        let fresh = Box::new(Table::new(self.table_slots));
        // SAFETY: `old` stays valid under the writer mutex.
        for slot in unsafe { &*old }.slots.iter() {
            let p = slot.load(Ordering::Relaxed);
            if is_live(p) {
                // SAFETY: live entry owned by the (locked) writer side.
                let (idx, _) = fresh.insert_slot(unsafe { (*p).key });
                fresh.slots[idx].store(p, Ordering::Relaxed);
            }
        }
        shard
            .published
            .store(Box::into_raw(fresh), Ordering::SeqCst);
        self.retire(w, Retired::Table(old));
        w.used = w.live;
    }

    /// Inserts (or refreshes) `key`, evicting via the second-chance clock
    /// if the shard is full. Serializes with other writers of the same
    /// shard; concurrent readers are never blocked.
    pub fn insert(&self, key: u128, value: Arc<V>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let shard = self.shard_of(key);
        let mut w = shard.writer.lock().unwrap();
        let mut t_ptr = shard.published.load(Ordering::Relaxed);
        if t_ptr.is_null() {
            t_ptr = Box::into_raw(Box::new(Table::new(self.table_slots)));
            shard.published.store(t_ptr, Ordering::SeqCst);
        }
        // SAFETY: the published table is only freed by this mutex-guarded
        // writer path, which we are.
        let table = unsafe { &*t_ptr };

        if let Some(idx) = table.find_slot(key) {
            // Refresh: publish a fresh entry (just-used, bit set), retire
            // the old one. Ring position is unchanged.
            let old = table.slots[idx].load(Ordering::Relaxed);
            let fresh = Box::into_raw(Box::new(Entry {
                key,
                referenced: AtomicBool::new(true),
                value,
            }));
            table.slots[idx].store(fresh, Ordering::SeqCst);
            self.retire(&mut w, Retired::Entry(old));
        } else {
            if w.live >= self.per_shard_capacity {
                self.clock_evict(table, &mut w);
            }
            let fresh = Box::into_raw(Box::new(Entry {
                key,
                referenced: AtomicBool::new(false),
                value,
            }));
            let (idx, was_empty) = table.insert_slot(key);
            table.slots[idx].store(fresh, Ordering::SeqCst);
            if was_empty {
                w.used += 1;
            }
            w.live += 1;
            w.ring.push_back(key);
            if w.used * 4 > self.table_slots * 3 {
                self.rebuild(shard, t_ptr, &mut w);
            }
        }
        shard.len.store(w.live, Ordering::Relaxed);
        self.collect(&mut w);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently resident across all shards (lock-free).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.len.load(Ordering::Relaxed))
            .sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len() as u64,
        }
    }

    /// Retired allocations not yet reclaimed (all shards) — bounded by
    /// write traffic between quiescent points; tests assert it drains.
    #[cfg(test)]
    fn retired_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.writer.lock().unwrap().retired.len())
            .sum()
    }
}

impl<V> Drop for ShardedLru<V> {
    fn drop(&mut self) {
        // `&mut self`: no reader or writer can be live. Free the retired
        // backlog, every resident entry, and the published tables.
        for shard in self.shards.iter() {
            let mut w = shard.writer.lock().unwrap();
            for (item, _) in w.retired.drain(..) {
                // SAFETY: exclusive access; retired items are reachable
                // from nowhere else.
                unsafe { item.free() };
            }
            let t = shard.published.swap(ptr::null_mut(), Ordering::Relaxed);
            if !t.is_null() {
                // SAFETY: exclusive access; the published table and its
                // live entries are owned solely by the cache now.
                unsafe {
                    for slot in (*t).slots.iter() {
                        let p = slot.load(Ordering::Relaxed);
                        if is_live(p) {
                            drop(Box::from_raw(p));
                        }
                    }
                    drop(Box::from_raw(t));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let c: ShardedLru<u32> = ShardedLru::new(8, 2);
        assert!(c.get(1).is_none());
        c.insert(1, Arc::new(10));
        assert_eq!(*c.get(1).unwrap(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard so the eviction order is fully observable.
        let c: ShardedLru<u32> = ShardedLru::new(2, 1);
        c.insert(1, Arc::new(1));
        c.insert(2, Arc::new(2));
        c.get(1); // 1 is now more recent than 2
        c.insert(3, Arc::new(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    /// Pins the second-chance clock semantics exactly: victims fall in
    /// insertion order, entries referenced since the hand last passed get
    /// demoted (bit cleared, moved behind the hand) instead of evicted,
    /// and a never-referenced entry is evicted even if it is young.
    #[test]
    fn eviction_order_is_second_chance_clock() {
        let c: ShardedLru<char> = ShardedLru::new(3, 1);
        c.insert(1, Arc::new('a'));
        c.insert(2, Arc::new('b'));
        c.insert(3, Arc::new('c'));
        // Touch 2 and 3; 1 is the oldest unreferenced entry.
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        c.insert(4, Arc::new('d')); // hand: 1 unref -> evict 1
        assert!(c.get(1).is_none(), "1 was the clock victim");
        assert_eq!(c.stats().evictions, 1);

        // Ring is now [2, 3, 4] with 2 and 3 referenced (the gets above,
        // re-set by the asserts below? no — asserts above were pre-evict).
        // 4 was inserted unreferenced and nothing touched it: the hand
        // demotes 2 and 3 (clearing their bits) and evicts 4 — young but
        // never referenced, exactly what the clock prescribes.
        c.insert(5, Arc::new('e'));
        assert!(c.get(4).is_none(), "unreferenced 4 evicted before 2/3");
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());

        // After that pass 2 and 3 sit unreferenced behind 5... but the
        // gets above just re-referenced them, so the next eviction demotes
        // both again and takes 5 (inserted unreferenced).
        c.insert(6, Arc::new('f'));
        assert!(c.get(5).is_none(), "5 was next on the clock");
        assert_eq!(c.stats().evictions, 3);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinserting_resident_key_does_not_evict() {
        let c: ShardedLru<u32> = ShardedLru::new(2, 1);
        c.insert(1, Arc::new(1));
        c.insert(2, Arc::new(2));
        c.insert(1, Arc::new(11));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(*c.get(1).unwrap(), 11);
        assert!(c.get(2).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c: ShardedLru<u32> = ShardedLru::new(0, 4);
        c.insert(1, Arc::new(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedLru<u32> = ShardedLru::new(100, 3);
        assert_eq!(c.shards.len(), 4);
        // Keys land in different shards but all are retrievable.
        for k in 0..64u128 {
            c.insert(k, Arc::new(k as u32));
        }
        for k in 0..64u128 {
            assert_eq!(*c.get(k).unwrap(), k as u32);
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new(64, 8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500u128 {
                        let k = (t * 13 + i * 7) % 96;
                        if let Some(v) = c.get(k) {
                            assert_eq!(*v, k as u64);
                        } else {
                            c.insert(k, Arc::new(k as u64));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 2000);
    }

    /// Readers hammer a small keyspace while writers churn the same keys
    /// through insert/evict/rebuild. Every hit must return the value the
    /// key was inserted with — a use-after-free or torn probe would return
    /// garbage or crash. Run with the full suite; `scripts/check.sh`
    /// additionally runs the extended variant (see
    /// `stress_reclamation_extended`).
    #[test]
    fn stress_readers_vs_writers() {
        stress(4, 4, 20_000);
    }

    /// The check.sh interleaving gate: longer, more threads than cores, so
    /// the scheduler produces preemption-point interleavings a quick run
    /// misses. (Loom/miri are unavailable under the std-only/offline
    /// constraint — see DESIGN.md §15 — so schedule diversity is the
    /// substitute.)
    #[test]
    #[ignore = "extended interleaving stress; run explicitly (scripts/check.sh does)"]
    fn stress_reclamation_extended() {
        stress(12, 6, 120_000);
    }

    fn stress(readers: usize, writers: usize, iters_per_thread: u64) {
        // Capacity far below the keyspace forces continuous eviction and
        // table rebuilds while readers race the reclamation path.
        let c: Arc<ShardedLru<u128>> = Arc::new(ShardedLru::new(32, 4));
        let keyspace = 256u128;
        let mut handles = Vec::new();
        for t in 0..writers {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut x = 0x9e37u64.wrapping_add(t as u64);
                for _ in 0..iters_per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = (x as u128) % keyspace;
                    c.insert(k, Arc::new(k * 3 + 1));
                }
            }));
        }
        for t in 0..readers {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut x = 0xc0ffeeu64.wrapping_add(t as u64);
                for _ in 0..iters_per_thread {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = (x as u128) % keyspace;
                    if let Some(v) = c.get(k) {
                        assert_eq!(*v, k * 3 + 1, "hit returned another key's value");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Quiesced: one more write per shard must reclaim the backlog
        // (nothing is pinned any more).
        for k in 0..4u128 {
            c.insert(keyspace + k, Arc::new((keyspace + k) * 3 + 1));
        }
        assert!(
            c.retired_len() <= 16,
            "retired backlog did not drain at quiescence: {}",
            c.retired_len()
        );
        let s = c.stats();
        assert!(s.insertions >= writers as u64 * iters_per_thread);
    }

    /// Exhausting the reader registry must fall back to the (slower)
    /// locked read path, not fail or race.
    #[test]
    fn reader_slot_exhaustion_falls_back() {
        let c: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::with_reader_slots(16, 1, 1));
        for k in 0..8u128 {
            c.insert(k, Arc::new(k as u64 + 100));
        }
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..2_000u128 {
                        let k = (t + i) % 8;
                        assert_eq!(*c.get(k).unwrap(), k as u64 + 100);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.stats().hits, 16_000);
    }

    /// Refresh keeps len stable and old values unreachable, across enough
    /// churn to force several rebuilds (tombstone + refresh traffic).
    #[test]
    fn refresh_churn_rebuilds_cleanly() {
        let c: ShardedLru<u64> = ShardedLru::new(4, 1);
        for round in 0..64u64 {
            for k in 0..4u128 {
                c.insert(k, Arc::new(round * 10 + k as u64));
            }
            for k in 0..4u128 {
                assert_eq!(*c.get(k).unwrap(), round * 10 + k as u64);
            }
            assert_eq!(c.len(), 4);
        }
        assert_eq!(c.stats().evictions, 0, "refreshes never evict");
    }
}
