//! A sharded LRU plan cache.
//!
//! Keys are the 128-bit canonical fingerprints of [`kpbs::fingerprint`]
//! (algorithm tag mixed in via [`kpbs::cache_key`]), values are immutable
//! `Arc`s shared with whoever is answering the request — a hit costs one
//! shard lock, one hash lookup and an `Arc` clone, never a deep copy of a
//! schedule. Because the planners are deterministic functions of the
//! canonical instance, a hit is guaranteed byte-identical to a cold plan
//! (the loopback test verifies exactly that).
//!
//! Sharding: the key's low bits pick one of a power-of-two number of
//! independently-locked shards, so concurrent workers rarely contend.
//! Eviction is least-recently-used per shard, tracked by a logical access
//! stamp; the evicting scan is O(shard size), which at serving-cache sizes
//! (thousands of entries, hit-dominated traffic) is far cheaper than the
//! pointer-chasing of an intrusive LRU list and needs no unsafe code.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Shard<V> {
    map: HashMap<u128, (Arc<V>, u64)>,
    clock: u64,
}

impl<V> Shard<V> {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// A sharded, bounded, least-recently-used map from fingerprint to plan.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

/// Cache statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, 0.0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl<V> ShardedLru<V> {
    /// Creates a cache of roughly `capacity` total entries spread over
    /// `shards` (rounded up to a power of two) independently-locked shards.
    /// A `capacity` of 0 disables caching: every lookup misses, inserts are
    /// dropped.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let per_shard_capacity = capacity.div_ceil(shard_count);
        ShardedLru {
            shards: (0..shard_count)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        clock: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: u128) -> &Mutex<Shard<V>> {
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u128) -> Option<Arc<V>> {
        if self.per_shard_capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard_of(key).lock().unwrap();
        let stamp = shard.touch();
        match shard.map.get_mut(&key) {
            Some((v, last_used)) => {
                *last_used = stamp;
                let v = v.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the shard's least-recently
    /// used entry if it is full.
    pub fn insert(&self, key: u128, value: Arc<V>) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard_of(key).lock().unwrap();
        let stamp = shard.touch();
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            if let Some(&oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, (value, stamp));
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let c: ShardedLru<u32> = ShardedLru::new(8, 2);
        assert!(c.get(1).is_none());
        c.insert(1, Arc::new(10));
        assert_eq!(*c.get(1).unwrap(), 10);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard so the LRU order is fully observable.
        let c: ShardedLru<u32> = ShardedLru::new(2, 1);
        c.insert(1, Arc::new(1));
        c.insert(2, Arc::new(2));
        c.get(1); // 1 is now more recent than 2
        c.insert(3, Arc::new(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_resident_key_does_not_evict() {
        let c: ShardedLru<u32> = ShardedLru::new(2, 1);
        c.insert(1, Arc::new(1));
        c.insert(2, Arc::new(2));
        c.insert(1, Arc::new(11));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(*c.get(1).unwrap(), 11);
        assert!(c.get(2).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c: ShardedLru<u32> = ShardedLru::new(0, 4);
        c.insert(1, Arc::new(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedLru<u32> = ShardedLru::new(100, 3);
        assert_eq!(c.shards.len(), 4);
        // Keys land in different shards but all are retrievable.
        for k in 0..64u128 {
            c.insert(k, Arc::new(k as u32));
        }
        for k in 0..64u128 {
            assert_eq!(*c.get(k).unwrap(), k as u32);
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new(64, 8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..500u128 {
                        let k = (t * 13 + i * 7) % 96;
                        if let Some(v) = c.get(k) {
                            assert_eq!(*v, k as u64);
                        } else {
                            c.insert(k, Arc::new(k as u64));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 2000);
    }
}
