//! A bounded MPMC queue — the admission-control heart of the server.
//!
//! Producers (connection threads) never block: [`BoundedQueue::try_push`]
//! either enqueues or reports `Full`/`Closed` immediately, so a saturated
//! server answers `Rejected{queue_full}` instead of buffering unboundedly
//! or hanging the client. Consumers (workers) block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed *and
//! drained* — closing is the graceful-shutdown signal: no new work is
//! admitted, but everything already accepted is still handed out, which is
//! what lets in-flight requests complete during shutdown.
//!
//! Built on `Mutex<VecDeque>` + `Condvar` only (std): at the queue depths a
//! planning service runs (tens to hundreds), lock contention is dwarfed by
//! planning time, and zero dependencies is a crate invariant.
//!
//! The module also provides [`Inbox`], the unbounded non-blocking mailbox
//! each event-loop I/O thread owns: workers and the acceptor push messages
//! (completions, fresh connections) and pair the push with an eventfd wake
//! so the epoll loop drains the mailbox on its next turn. Unbounded is
//! deliberate — everything that lands in an inbox was already admitted
//! through the bounded queue above, so the backlog is bounded by in-flight
//! work, not by the peer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed (shutdown); the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum queue depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue: `Full` at capacity, `Closed` after
    /// [`BoundedQueue::close`]. Never waits.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking dequeue. Returns `None` only once the queue is closed *and*
    /// every accepted item has been handed out — the drain guarantee.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain the backlog
    /// then return `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }
}

/// An unbounded, non-blocking MPSC-style mailbox (multiple producers, one
/// draining consumer — though nothing breaks with more). See the module
/// docs for why it may be unbounded.
pub struct Inbox<T> {
    items: Mutex<VecDeque<T>>,
}

impl<T> Inbox<T> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Inbox {
            items: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues an item. Never blocks beyond the mutex.
    pub fn push(&self, item: T) {
        self.items.lock().unwrap().push_back(item);
    }

    /// Takes everything queued, in arrival order, leaving the mailbox
    /// empty. Returns an empty queue when there is nothing.
    pub fn drain(&self) -> VecDeque<T> {
        std::mem::take(&mut *self.items.lock().unwrap())
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.lock().unwrap().is_empty()
    }
}

impl<T> Default for Inbox<T> {
    fn default() -> Self {
        Inbox::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn inbox_drains_in_arrival_order() {
        let inbox = Inbox::new();
        assert!(inbox.is_empty());
        inbox.push(1);
        inbox.push(2);
        inbox.push(3);
        assert!(!inbox.is_empty());
        assert_eq!(Vec::from(inbox.drain()), vec![1, 2, 3]);
        assert!(inbox.is_empty());
        assert!(inbox.drain().is_empty());
    }

    #[test]
    fn inbox_concurrent_pushes_lose_nothing() {
        let inbox = Arc::new(Inbox::new());
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let inbox = inbox.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        inbox.push(p * 1000 + i);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let got = inbox.drain();
        assert_eq!(got.len(), 1000);
        let sum: u64 = got.iter().sum();
        let expect: u64 = (0..4u64)
            .map(|p| (0..250u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(sum, expect);
    }

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(1);
        q.try_push(10).unwrap();
        assert_eq!(q.try_push(11), Err(PushError::Full(11)));
        assert_eq!(q.pop(), Some(10));
        q.try_push(12).unwrap();
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        // The backlog accepted before close still drains, in order.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        q.close();
        let got: Vec<Option<u32>> = consumers.into_iter().map(|c| c.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|g| g.is_none()).count(), 2);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::<u64>::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let mut v = p * 1000 + i;
                        // Spin on Full: bounded queue, cooperating producers.
                        loop {
                            match q.try_push(v) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: u64 = (0..4u64)
            .map(|p| (0..100u64).map(|i| p * 1000 + i).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }
}
