//! `redistd` — a long-lived K-PBS scheduling service.
//!
//! The rest of the workspace plans one redistribution per process:
//! `redistplan` parses a matrix, schedules it, prints, exits. A backbone
//! operator's control plane doesn't work like that — it streams traffic
//! matrices at a scheduler and needs answers in bounded time, with
//! backpressure instead of collapse when overloaded, and without paying
//! the full planning cost for the (very common) repeated matrix. This
//! crate is that serving layer:
//!
//! * [`wire`] — a length-prefixed binary protocol (magic + version +
//!   request id + platform + CSR traffic matrix in, schedule + per-request
//!   work-counter deltas out) plus the plaintext `STATS` admin command,
//!   with both a blocking reader and a resumable [`wire::FrameDecoder`]
//!   for non-blocking sockets;
//! * [`queue`] — the bounded MPMC queue that *is* the admission-control
//!   policy: `try_push` or reject, never buffer unboundedly — plus the
//!   unbounded [`queue::Inbox`] mailboxes of the event core;
//! * [`cache`] — a sharded plan cache keyed by [`mod@kpbs::fingerprint`]'s
//!   canonical instance hash, with a lock-free read path (epoch-reclaimed
//!   published tables) and second-chance-clock eviction; hits return
//!   byte-identical schedules to a cold run;
//! * [`session`] — live delta-planning sessions: each wire-v3 `OPEN`
//!   pins a [`kpbs::DeltaPlanner`] that repairs its committed schedule
//!   in place under `DELTA` batches (repair → re-peel → cold-fallback
//!   ladder), with a bounded [`session::SessionTable`] as the admission
//!   boundary and `COMMIT` publishing patched plans into the cache
//!   under generation-qualified keys;
//! * [`server`] — the serving core: `epoll` event loop by default on
//!   Linux ([`server::ServingCore`]), thread-per-connection baseline
//!   elsewhere (or on request), fixed worker pool, graceful drain-based
//!   shutdown;
//! * [`client`] — a small blocking client.
//!
//! Two binaries ship with the crate: `redistd` (the daemon; `--trace`,
//! SIGTERM/ctrl-c drain) and `redistload` (a multi-connection load
//! generator — closed-loop, open-loop `--rate`, or the `--sessions`
//! streaming-admission campaign — writing `BENCH_serve.json` /
//! `BENCH_session.json`).
//!
//! Like `telemetry`, this crate is std-only: no async runtime, no socket
//! or serialization dependency — threads, `TcpListener`, hand-rolled
//! frames and (on Linux) a ~200-line raw `epoll` shim are entirely
//! sufficient for a planner whose unit of work is milliseconds of
//! matching, and the absence of a dependency tree keeps the serving
//! layer as auditable as the scheduler it wraps.
//!
//! # Quickstart
//!
//! ```
//! use redistd::{client, server::{self, ServerConfig}, wire::Algo};
//! use kpbs::{Platform, TrafficMatrix};
//!
//! let handle = server::start(ServerConfig::default()).unwrap();
//! let platform = Platform::new(3, 3, 100.0, 100.0, 200.0);
//! let mut traffic = TrafficMatrix::zeros(3, 3);
//! traffic.set(0, 0, 10_000_000);
//! traffic.set(1, 2, 4_000_000);
//!
//! let mut c = client::Client::connect(handle.addr()).unwrap();
//! let req = client::request(1, Algo::Oggp, &traffic, &platform, 0.05);
//! match c.plan(&req).unwrap() {
//!     redistd::wire::PlanResponse::Ok { schedule, cached, .. } => {
//!         assert!(!cached);
//!         assert!(schedule.num_steps() > 0);
//!     }
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! let stats = handle.shutdown();
//! assert_eq!(stats.served, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
#[cfg(target_os = "linux")]
pub(crate) mod event;
pub mod queue;
pub mod server;
pub mod session;
#[cfg(target_os = "linux")]
pub(crate) mod sys;
pub mod wire;

pub use server::{start, ServerConfig, ServerHandle, ServerStats, ServingCore};
pub use wire::{Algo, PlanRequest, PlanResponse, RejectReason};
