//! `redistd` — the K-PBS scheduling daemon.
//!
//! ```sh
//! redistd [--addr 127.0.0.1:7411] [--workers N] [--queue-depth N]
//!         [--cache-capacity N] [--max-cells N] [--trace out.json]
//! ```
//!
//! Accepts length-prefixed binary planning requests (see `redistd::wire`),
//! plans them with OGGP/GGP on a fixed worker pool behind a bounded
//! admission queue, and serves repeated instances from a sharded LRU plan
//! cache. `STATS\n` on a connection returns a plaintext operational report.
//!
//! SIGTERM or ctrl-c triggers a graceful shutdown: the listener closes,
//! every admitted request is drained to its response, then the process
//! exits. With `--trace` the daemon records telemetry spans for every
//! planned request and writes a Chrome trace-event JSON on shutdown.

use redistd::server::{self, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use telemetry::{counters, export, spans};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Zero-dependency signal hookup: libc is already linked by std, so the
    // two symbols we need can be declared directly. The handler only
    // stores to an atomic — async-signal-safe by construction.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn opt<T: std::str::FromStr>(name: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
                eprintln!("redistd: bad value for --{name}");
                std::process::exit(2);
            }
        }
    }
    default
}

fn opt_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

fn main() {
    if std::env::args().any(|a| a == "--help") {
        println!(
            "redistd — long-lived K-PBS scheduling daemon\n\
             \n\
             usage: redistd [--addr 127.0.0.1:7411] [--workers N]\n\
             \x20              [--queue-depth N] [--cache-capacity N]\n\
             \x20              [--max-cells N] [--trace out.json]\n\
             \n\
             --addr A            bind address (default 127.0.0.1:7411)\n\
             --workers N         planner threads (default: cores, max 8)\n\
             --queue-depth N     admission queue bound; overflow answers\n\
             \x20                   Rejected{{queue_full}} (default 64)\n\
             --cache-capacity N  plan-cache entries, 0 disables (default 1024)\n\
             --max-cells N       reject matrices with more than N cells\n\
             \x20                   (default 1048576)\n\
             --trace PATH        record spans; write Chrome trace JSON on exit\n\
             \n\
             Send the 6 ASCII bytes 'STATS\\n' on a connection for a plaintext\n\
             operational report. SIGTERM / ctrl-c drains in-flight requests\n\
             and exits."
        );
        return;
    }

    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: opt_str("addr").unwrap_or_else(|| "127.0.0.1:7411".into()),
        workers: opt("workers", defaults.workers),
        queue_depth: opt("queue-depth", defaults.queue_depth),
        cache_capacity: opt("cache-capacity", defaults.cache_capacity),
        max_cells: opt("max-cells", defaults.max_cells),
        ..defaults
    };
    let trace_path = opt_str("trace");

    // Work counters power the per-request deltas in every response; spans
    // only when a trace is requested (they buffer events).
    counters::enable();
    if trace_path.is_some() {
        spans::enable();
    }

    install_signal_handlers();
    let handle = match server::start(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("redistd: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "redistd listening on {} ({} workers, queue depth {}, cache {})",
        handle.addr(),
        config.workers,
        config.queue_depth,
        config.cache_capacity
    );

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("redistd: shutting down (draining in-flight requests)");
    let stats = handle.shutdown();
    eprintln!(
        "redistd: served {} requests ({} cache hits, {} rejected), p99 {} us",
        stats.served,
        stats.cache.hits,
        stats.rejected_queue_full + stats.rejected_too_large,
        stats.p99_us
    );

    if let Some(path) = trace_path {
        spans::disable();
        let events = spans::drain_all();
        match std::fs::write(&path, export::chrome_trace(&events)) {
            Ok(()) => eprintln!("redistd: {} span events written to {path}", events.len()),
            Err(e) => eprintln!("redistd: cannot write {path}: {e}"),
        }
    }
}
