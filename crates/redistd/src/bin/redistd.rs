//! `redistd` — the K-PBS scheduling daemon.
//!
//! ```sh
//! redistd [--addr 127.0.0.1:7411] [--workers N] [--queue-depth N]
//!         [--cache-capacity N] [--max-cells N] [--core event|threads]
//!         [--io-threads N] [--trace out.json]
//! ```
//!
//! Accepts length-prefixed binary planning requests (see `redistd::wire`),
//! plans them with OGGP/GGP on a fixed worker pool behind a bounded
//! admission queue, and serves repeated instances from a sharded LRU plan
//! cache. Sockets are carried by the epoll event-loop core by default
//! (`--core threads` selects the thread-per-connection baseline). Plaintext admin commands on a connection: `STATS\n` returns an
//! operational report, `METRICS\n` Prometheus text exposition, `FLIGHT\n`
//! a dump of the always-on per-request flight recorder.
//!
//! SIGTERM or ctrl-c triggers a graceful shutdown: the listener closes,
//! every admitted request is drained to its response, then the process
//! exits. With `--trace` the daemon records telemetry spans for every
//! planned request and writes a Chrome trace-event JSON on shutdown.

use redistd::server::{self, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use telemetry::{counters, export, spans};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Zero-dependency signal hookup: libc is already linked by std, so the
    // two symbols we need can be declared directly. The handler only
    // stores to an atomic — async-signal-safe by construction.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn opt<T: std::str::FromStr>(name: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
                eprintln!("redistd: bad value for --{name}");
                std::process::exit(2);
            }
        }
    }
    default
}

fn opt_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

fn main() {
    if std::env::args().any(|a| a == "--help") {
        println!(
            "redistd — long-lived K-PBS scheduling daemon\n\
             \n\
             usage: redistd [--addr 127.0.0.1:7411] [--workers N]\n\
             \x20              [--queue-depth N] [--cache-capacity N]\n\
             \x20              [--max-cells N] [--trace out.json]\n\
             \n\
             --addr A            bind address (default 127.0.0.1:7411)\n\
             --workers N         planner threads (default: cores, max 8)\n\
             --queue-depth N     admission queue bound; overflow answers\n\
             \x20                   Rejected{{queue_full}} (default 64)\n\
             --cache-capacity N  plan-cache entries, 0 disables (default 1024)\n\
             --max-cells N       reject matrices with more than N cells\n\
             \x20                   (default 1048576)\n\
             --core C            socket front-end: 'event' (epoll I/O\n\
             \x20                   threads, default) or 'threads'\n\
             \x20                   (one blocking thread per connection)\n\
             --io-threads N      event-core I/O threads (default 2)\n\
             --trace PATH        record spans; write Chrome trace JSON on exit\n\
             --flight-capacity N flight-recorder ring size (default 1024)\n\
             --flight-dump PATH  write the flight-recorder dump on drain\n\
             --port-file PATH    write the bound address once listening\n\
             \x20                   (lets scripts use --addr host:0)\n\
             \n\
             Plaintext admin commands on a connection: 'STATS\\n' (report),\n\
             'METRICS\\n' (Prometheus exposition), 'FLIGHT\\n' (flight dump).\n\
             SIGTERM / ctrl-c drains in-flight requests and exits."
        );
        return;
    }

    let defaults = ServerConfig::default();
    let core = match opt_str("core") {
        Some(s) => s.parse().unwrap_or_else(|e: String| {
            eprintln!("redistd: {e}");
            std::process::exit(2);
        }),
        None => defaults.core,
    };
    let config = ServerConfig {
        addr: opt_str("addr").unwrap_or_else(|| "127.0.0.1:7411".into()),
        workers: opt("workers", defaults.workers),
        queue_depth: opt("queue-depth", defaults.queue_depth),
        cache_capacity: opt("cache-capacity", defaults.cache_capacity),
        max_cells: opt("max-cells", defaults.max_cells),
        flight_capacity: opt("flight-capacity", defaults.flight_capacity),
        core,
        io_threads: opt("io-threads", defaults.io_threads),
        ..defaults
    };
    let trace_path = opt_str("trace");
    let flight_dump = opt_str("flight-dump");
    let port_file = opt_str("port-file");

    // Work counters power the per-request deltas in every response; spans
    // only when a trace is requested (they buffer events).
    counters::enable();
    if trace_path.is_some() {
        spans::enable();
    }

    install_signal_handlers();
    let handle = match server::start(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("redistd: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "redistd listening on {} ({} core, {} workers, queue depth {}, cache {})",
        handle.addr(),
        config.core.label(),
        config.workers,
        config.queue_depth,
        config.cache_capacity
    );
    if let Some(path) = &port_file {
        // Written last, atomically enough for a poll loop: scripts binding
        // port 0 wait for this file to learn the real address.
        if let Err(e) = std::fs::write(path, format!("{}\n", handle.addr())) {
            eprintln!("redistd: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("redistd: shutting down (draining in-flight requests)");
    let (stats, flight) = handle.shutdown_with_flight();
    if let Some(path) = &flight_dump {
        match std::fs::write(path, &flight) {
            Ok(()) => eprintln!("redistd: flight records written to {path}"),
            Err(e) => eprintln!("redistd: cannot write {path}: {e}"),
        }
    }
    eprintln!(
        "redistd: served {} requests ({} cache hits, {} rejected), p99 {} us",
        stats.served,
        stats.cache.hits,
        stats.rejected_queue_full + stats.rejected_too_large,
        stats.p99_us
    );

    if let Some(path) = trace_path {
        spans::disable();
        let events = spans::drain_all();
        match std::fs::write(&path, export::chrome_trace(&events)) {
            Ok(()) => eprintln!("redistd: {} span events written to {path}", events.len()),
            Err(e) => eprintln!("redistd: cannot write {path}: {e}"),
        }
    }
}
