//! `redistctl` — admin CLI for a running `redistd`.
//!
//! ```sh
//! redistctl <stats|metrics|flight> --addr HOST:PORT [--validate]
//!           [--expect-requests N]
//! ```
//!
//! Fetches one of the plaintext admin reports and prints it to stdout.
//! `--validate` (metrics) additionally checks Prometheus exposition
//! well-formedness; `--expect-requests N` (flight) asserts the recorder
//! has seen at least N requests; `--field KEY` (stats) prints just that
//! field's value. All exit non-zero on failure, which is how
//! `scripts/check.sh` turns a scrape into a CI gate.

use redistd::client;
use telemetry::metrics;

fn opt_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

fn usage() -> ! {
    eprintln!(
        "usage: redistctl <stats|metrics|flight> --addr HOST:PORT\n\
         \x20                [--validate] [--expect-requests N] [--field KEY]\n\
         \n\
         stats               fetch the plaintext STATS report\n\
         metrics             fetch Prometheus text exposition (METRICS)\n\
         flight              fetch the flight-recorder dump (FLIGHT)\n\
         --validate          (metrics) check exposition well-formedness\n\
         --expect-requests N (flight) require >= N recorded requests\n\
         --field KEY         (stats) print only KEY's value; exit 1 if absent"
    );
    std::process::exit(2);
}

fn main() {
    let command = match std::env::args().nth(1) {
        Some(c) if ["stats", "metrics", "flight"].contains(&c.as_str()) => c,
        _ => usage(),
    };
    let addr = opt_str("addr").unwrap_or_else(|| usage());

    let body = match command.as_str() {
        "stats" => client::fetch_stats(&addr),
        "metrics" => client::fetch_metrics(&addr),
        "flight" => client::fetch_flight(&addr),
        _ => unreachable!(),
    };
    let body = match body {
        Ok(b) => b,
        Err(e) => {
            eprintln!("redistctl: cannot fetch {command} from {addr}: {e}");
            std::process::exit(1);
        }
    };

    if command == "stats" {
        if let Some(key) = opt_str("field") {
            // Same first-line-wins discipline as `client::stats_field`, but
            // on the raw value so non-numeric fields (`core: event`) work.
            let value = body.lines().find_map(|l| {
                let (k, v) = l.split_once(": ")?;
                (k == key).then_some(v)
            });
            match value {
                Some(v) => {
                    println!("{v}");
                    return;
                }
                None => {
                    eprintln!("redistctl: stats report has no field {key:?}");
                    std::process::exit(1);
                }
            }
        }
    }
    print!("{body}");

    if command == "metrics" && flag("validate") {
        if let Err(e) = metrics::validate_exposition(&body) {
            eprintln!("redistctl: exposition invalid: {e}");
            std::process::exit(1);
        }
        eprintln!("redistctl: exposition well-formed");
    }

    if command == "flight" {
        if let Some(min) = opt_str("expect-requests") {
            let min: u64 = min.parse().unwrap_or_else(|_| usage());
            // The dump header carries the lifetime total:
            // `redistd flight records=K capacity=C total=T`.
            let total = body
                .lines()
                .next()
                .and_then(|h| h.rsplit_once("total=").map(|(_, t)| t.trim().to_string()))
                .and_then(|t| t.parse::<u64>().ok());
            match total {
                Some(t) if t >= min => {
                    eprintln!("redistctl: flight recorder saw {t} requests (>= {min})");
                }
                Some(t) => {
                    eprintln!("redistctl: flight recorder saw {t} requests, expected >= {min}");
                    std::process::exit(1);
                }
                None => {
                    eprintln!("redistctl: malformed flight header");
                    std::process::exit(1);
                }
            }
        }
    }
}
