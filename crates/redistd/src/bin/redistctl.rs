//! `redistctl` — admin CLI for a running `redistd`.
//!
//! ```sh
//! redistctl <stats|metrics|flight> --addr HOST:PORT [--validate]
//!           [--expect-requests N]
//! ```
//!
//! Fetches one of the plaintext admin reports and prints it to stdout.
//! `--validate` (metrics) additionally checks Prometheus exposition
//! well-formedness; `--expect-requests N` (flight) asserts the recorder
//! has seen at least N requests; `--field KEY` (stats and metrics) prints
//! just that field's value. All exit non-zero on failure, which is how
//! `scripts/check.sh` turns a scrape into a CI gate.

use redistd::client;
use telemetry::metrics;

fn opt_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

fn usage() -> ! {
    eprintln!(
        "usage: redistctl <stats|metrics|flight> --addr HOST:PORT\n\
         \x20                [--validate] [--expect-requests N] [--field KEY]\n\
         \n\
         stats               fetch the plaintext STATS report\n\
         metrics             fetch Prometheus text exposition (METRICS)\n\
         flight              fetch the flight-recorder dump (FLIGHT)\n\
         --validate          (metrics) check exposition well-formedness\n\
         --expect-requests N (flight) require >= N recorded requests\n\
         --field KEY         (stats, metrics) print only KEY's value;\n\
         \x20                exit 1 if absent (or, for metrics, non-finite)"
    );
    std::process::exit(2);
}

/// The value of the first exposition sample whose metric name is exactly
/// `name` (labels, if any, are ignored for the match) — the metrics twin
/// of the stats selector, under the same first-occurrence-wins
/// discipline: a malformed value on the first matching line yields `None`
/// rather than silently falling through to a later sample. Non-finite
/// values (`NaN`, `+Inf`), which a healthy server never emits, are
/// rejected so scripts can't propagate them into comparisons.
fn metrics_field(body: &str, name: &str) -> Option<String> {
    let line = body.lines().find(|l| {
        !l.starts_with('#') && l.split([' ', '{']).next().is_some_and(|head| head == name)
    })?;
    // A sample line is `name[{labels}] value` (labels may not contain
    // spaces in our registry); the value is the token after the name part.
    let rest = match line.split_once('}') {
        Some((_, tail)) => tail,
        None => line.split_once(' ')?.1,
    };
    let value = rest.split_whitespace().next()?;
    let v: f64 = value.parse().ok()?;
    v.is_finite().then(|| value.to_string())
}

fn main() {
    let command = match std::env::args().nth(1) {
        Some(c) if ["stats", "metrics", "flight"].contains(&c.as_str()) => c,
        _ => usage(),
    };
    let addr = opt_str("addr").unwrap_or_else(|| usage());

    let body = match command.as_str() {
        "stats" => client::fetch_stats(&addr),
        "metrics" => client::fetch_metrics(&addr),
        "flight" => client::fetch_flight(&addr),
        _ => unreachable!(),
    };
    let body = match body {
        Ok(b) => b,
        Err(e) => {
            eprintln!("redistctl: cannot fetch {command} from {addr}: {e}");
            std::process::exit(1);
        }
    };

    if command == "stats" {
        if let Some(key) = opt_str("field") {
            // Same first-line-wins discipline as `client::stats_field`, but
            // on the raw value so non-numeric fields (`core: event`) work.
            let value = body.lines().find_map(|l| {
                let (k, v) = l.split_once(": ")?;
                (k == key).then_some(v)
            });
            match value {
                Some(v) => {
                    println!("{v}");
                    return;
                }
                None => {
                    eprintln!("redistctl: stats report has no field {key:?}");
                    std::process::exit(1);
                }
            }
        }
    }
    if command == "metrics" {
        if let Some(name) = opt_str("field") {
            match metrics_field(&body, &name) {
                Some(v) => {
                    println!("{v}");
                    return;
                }
                None => {
                    eprintln!("redistctl: exposition has no finite sample named {name:?}");
                    std::process::exit(1);
                }
            }
        }
    }
    print!("{body}");

    if command == "metrics" && flag("validate") {
        if let Err(e) = metrics::validate_exposition(&body) {
            eprintln!("redistctl: exposition invalid: {e}");
            std::process::exit(1);
        }
        eprintln!("redistctl: exposition well-formed");
    }

    if command == "flight" {
        if let Some(min) = opt_str("expect-requests") {
            let min: u64 = min.parse().unwrap_or_else(|_| usage());
            // The dump header carries the lifetime total:
            // `redistd flight records=K capacity=C total=T`.
            let total = body
                .lines()
                .next()
                .and_then(|h| h.rsplit_once("total=").map(|(_, t)| t.trim().to_string()))
                .and_then(|t| t.parse::<u64>().ok());
            match total {
                Some(t) if t >= min => {
                    eprintln!("redistctl: flight recorder saw {t} requests (>= {min})");
                }
                Some(t) => {
                    eprintln!("redistctl: flight recorder saw {t} requests, expected >= {min}");
                    std::process::exit(1);
                }
                None => {
                    eprintln!("redistctl: malformed flight header");
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::metrics_field;

    const BODY: &str = "\
# HELP redistd_requests_total Requests by final outcome.\n\
# TYPE redistd_requests_total counter\n\
redistd_requests_total{outcome=\"planned\"} 3\n\
redistd_requests_total{outcome=\"cache_hit\"} 9\n\
redistd_uptime_seconds 12.5\n\
redistd_bad NaN\n\
redistd_worse garbage\nredistd_worse 7\n";

    #[test]
    fn picks_first_matching_sample_labels_ignored() {
        assert_eq!(
            metrics_field(BODY, "redistd_requests_total").as_deref(),
            Some("3")
        );
        assert_eq!(
            metrics_field(BODY, "redistd_uptime_seconds").as_deref(),
            Some("12.5")
        );
    }

    #[test]
    fn comments_and_missing_names_yield_none() {
        assert_eq!(metrics_field(BODY, "redistd_missing"), None);
        // The HELP/TYPE lines mention the name but are not samples.
        assert_eq!(metrics_field("# TYPE x counter\n", "x"), None);
        // A name must match exactly, not by prefix.
        assert_eq!(metrics_field(BODY, "redistd_requests"), None);
    }

    #[test]
    fn non_finite_and_malformed_first_occurrences_are_rejected() {
        assert_eq!(metrics_field(BODY, "redistd_bad"), None);
        // First occurrence wins even when a later duplicate would parse —
        // same discipline as the stats selector.
        assert_eq!(metrics_field(BODY, "redistd_worse"), None);
    }
}
