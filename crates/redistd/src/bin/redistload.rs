//! `redistload` — load generator and correctness checker for `redistd`.
//!
//! ```sh
//! redistload [--addr HOST:PORT] [--connections 16] [--requests 256]
//!            [--distinct 16] [--n 12] [--rate REQS_PER_SEC]
//!            [--core event|threads] [--queue-depth N]
//!            [--out BENCH_serve.json]
//! redistload --campaign 64,256,1024 [--requests N] [--out BENCH_serve.json]
//! redistload --sessions ROUNDS [--delta-cells K] [--rate DELTAS_PER_SEC]
//!            [--n 12] [--out BENCH_session.json]
//! ```
//!
//! Without `--addr` it hosts a server in-process on a free port (the CI
//! mode used by `scripts/check.sh`). It generates `--distinct`
//! deterministic random traffic matrices, replays them round-robin from
//! `--connections` client threads, and for every response checks that:
//!
//! * the schedule byte-compares equal (via `wire::encode_schedule`) to a
//!   cold plan of the same instance computed locally — cache hits must be
//!   indistinguishable from misses;
//! * the schedule passes [`mod@kpbs::validate`] and its cost is bounded below
//!   by [`kpbs::lower_bound()`];
//! * every `Ok` response carries a non-zero `server_id` (the server-minted
//!   correlation id that joins the response to the server's flight record
//!   and span timeline).
//!
//! Two pacing modes. The default is **closed-loop**: each connection fires
//! its next request the moment the previous response lands, measuring the
//! server at the offered concurrency. `--rate R` switches to **open-loop**:
//! the target arrival rate is split across connections, every request gets
//! a wall-clock send deadline up front, and latency is measured from that
//! *scheduled* time — so a slow server that makes senders fall behind pays
//! for the queueing delay it caused instead of quietly suppressing the
//! arrivals (coordinated omission).
//!
//! `--campaign C1,C2,...` runs the serving-scale campaign instead: a
//! thread-per-connection baseline at the first connection count, then the
//! event-loop core at every count, each against a fresh in-process server
//! sized for the point (`queue_depth = max(1024, 2×connections)`), writing
//! a multi-point `serve_scale_v1` JSON with per-point latency quantiles
//! and throughput ratios against the baseline. The campaign exits non-zero
//! only on correctness failures — a slow point is a result, not an error.
//!
//! After a single run it also scrapes the server's `METRICS` exposition,
//! validates its well-formedness, and embeds the server-side view (queue
//! wait, service time, outcome counts) next to the client-side one.
//!
//! `--sessions ROUNDS` runs the **streaming-admission campaign** instead:
//! against each serving core it opens a live wire-v3 session and streams
//! `ROUNDS` coflow-style delta batches (message arrivals and departures,
//! `--delta-cells` edits per batch, paced by `--rate` deltas/s when
//! given). A local mirror [`kpbs::DeltaPlanner`] is fed the same edits;
//! every patched schedule the server returns must byte-compare equal to
//! the mirror's, deliver exactly the post-delta matrix that a cold plan
//! of the same instance delivers, and stay within the replan cost bound.
//! Any mismatch exits non-zero.

use kpbs::traffic::TickScale;
use kpbs::{DeltaPlanner, Platform, TrafficMatrix};
use redistd::client::{self, Client};
use redistd::server::{self, ServerConfig, ServingCore};
use redistd::wire::{self, Algo, PlanResponse, SessionLevel, WireDelta};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{metrics, Histogram};

const BETA_SECONDS: f64 = 0.05;

/// Connect attempts per client thread before a connection counts as failed.
const CONNECT_ATTEMPTS: u32 = 8;

/// Hard ceiling on `--connections` / campaign points: beyond this the
/// generator itself (thread stacks, ephemeral ports) becomes the bottleneck
/// and the numbers stop describing the server.
const MAX_CONNECTIONS: usize = 4096;

/// Deterministic xorshift64* — the workspace is std-only, so no `rand`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
                eprintln!("redistload: bad value for --{name}");
                std::process::exit(2);
            }
        }
    }
    default
}

fn arg_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

/// One pre-planned workload item: the request to send and the expected
/// schedule bytes from a cold local plan.
struct WorkItem {
    traffic: TrafficMatrix,
    expected_bytes: Vec<u8>,
    expected_cost: u64,
    lower_bound: u64,
}

fn build_workload(distinct: usize, n: usize, platform: &Platform) -> Vec<WorkItem> {
    (0..distinct)
        .map(|i| {
            let mut rng = Rng::new(0xC0FF_EE00 + i as u64);
            let mut traffic = TrafficMatrix::zeros(n, n);
            // ~40% dense, messages 1..64 MB — big enough that every
            // instance needs several steps.
            for r in 0..n {
                for c in 0..n {
                    if rng.below(10) < 4 {
                        traffic.set(r, c, (1 + rng.below(64)) * 1_000_000);
                    }
                }
            }
            // Guarantee non-empty.
            if traffic.total_bytes() == 0 {
                traffic.set(0, 0, 8_000_000);
            }
            let (inst, _) = traffic.to_instance(platform, BETA_SECONDS, TickScale::MILLIS);
            let schedule = kpbs::oggp(&inst);
            kpbs::validate::validate(&inst, &schedule).expect("cold plan must validate");
            WorkItem {
                expected_bytes: wire::encode_schedule(&schedule),
                expected_cost: schedule.cost(),
                lower_bound: kpbs::lower_bound(&inst),
                traffic,
            }
        })
        .collect()
}

#[derive(Default)]
struct Outcome {
    hits: u64,
    failures: u64,
    /// How many `Ok` responses carried a non-zero server-minted id (must
    /// equal the responses received).
    correlated: u64,
}

/// Checks one response against its cold reference, updating `out`.
fn check_response(i: u64, resp: PlanResponse, item: &WorkItem, out: &mut Outcome) {
    match resp {
        PlanResponse::Ok {
            request_id,
            cached,
            schedule,
            cost,
            lower_bound,
            server_id,
            ..
        } => {
            let bytes = wire::encode_schedule(&schedule);
            if request_id != i
                || bytes != item.expected_bytes
                || cost != item.expected_cost
                || lower_bound != item.lower_bound
                || cost < lower_bound
            {
                eprintln!(
                    "redistload: request {i} mismatch (cached={cached}, \
                     cost {cost} vs expected {}, lb {lower_bound} vs {})",
                    item.expected_cost, item.lower_bound
                );
                out.failures += 1;
            }
            // v2 responses must be correlated: the server mints ids
            // from 1, so 0 means the header field went missing.
            if server_id == 0 {
                eprintln!("redistload: request {i} carried no server_id");
                out.failures += 1;
            } else {
                out.correlated += 1;
            }
            if cached {
                out.hits += 1;
            }
        }
        other => {
            eprintln!("redistload: request {i} unexpected response: {other:?}");
            out.failures += 1;
        }
    }
}

/// Closed-loop worker: pull the next global request index, send, wait,
/// repeat. Latency is response time at the offered concurrency.
fn run_closed(
    addr: std::net::SocketAddr,
    items: &[WorkItem],
    platform: &Platform,
    next: &AtomicU64,
    requests: u64,
    latency_us: &Histogram,
) -> Outcome {
    let mut client = match Client::connect_with_retry(addr, CONNECT_ATTEMPTS) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("redistload: connect failed after {CONNECT_ATTEMPTS} attempts: {e}");
            return Outcome {
                failures: 1,
                ..Outcome::default()
            };
        }
    };
    let mut out = Outcome::default();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= requests {
            return out;
        }
        let item = &items[(i as usize) % items.len()];
        let req = client::request(i, Algo::Oggp, &item.traffic, platform, BETA_SECONDS);
        let start = Instant::now();
        let resp = match client.plan(&req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("redistload: request {i} transport error: {e}");
                out.failures += 1;
                return out;
            }
        };
        latency_us.record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        check_response(i, resp, item, &mut out);
    }
}

/// Open-loop worker: this thread owns request indices
/// `worker, worker+stride, ...` and sends each at its precomputed deadline
/// (`base + i/rate`), never earlier. Latency runs from the *deadline*, so
/// time spent stuck behind a slow previous response is charged to the
/// server — the coordinated-omission correction.
#[allow(clippy::too_many_arguments)]
fn run_open(
    addr: std::net::SocketAddr,
    items: &[WorkItem],
    platform: &Platform,
    base: Instant,
    worker: u64,
    stride: u64,
    requests: u64,
    interval: Duration,
    latency_us: &Histogram,
) -> Outcome {
    let mut client = match Client::connect_with_retry(addr, CONNECT_ATTEMPTS) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("redistload: connect failed after {CONNECT_ATTEMPTS} attempts: {e}");
            return Outcome {
                failures: 1,
                ..Outcome::default()
            };
        }
    };
    let mut out = Outcome::default();
    let mut i = worker;
    while i < requests {
        let deadline = base + interval * (i as u32);
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        let item = &items[(i as usize) % items.len()];
        let req = client::request(i, Algo::Oggp, &item.traffic, platform, BETA_SECONDS);
        let resp = match client.plan(&req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("redistload: request {i} transport error: {e}");
                out.failures += 1;
                return out;
            }
        };
        latency_us.record(deadline.elapsed().as_micros().min(u64::MAX as u128) as u64);
        check_response(i, resp, item, &mut out);
        i += stride;
    }
    out
}

/// A measured load point: what was run and what came back.
struct PointResult {
    core: &'static str,
    connections: usize,
    requests: u64,
    rate: f64,
    elapsed: Duration,
    throughput: f64,
    latency: Arc<Histogram>,
    hits: u64,
    failures: u64,
    correlated: u64,
}

impl PointResult {
    fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.requests as f64
    }

    fn json(&self, indent: &str) -> String {
        format!(
            "{{\n{indent}  \"core\": \"{}\",\n{indent}  \"connections\": {},\n\
             {indent}  \"requests\": {},\n{indent}  \"rate_rps\": {:.1},\n\
             {indent}  \"elapsed_s\": {:.4},\n{indent}  \"throughput_rps\": {:.2},\n\
             {indent}  \"latency_us_p50\": {},\n{indent}  \"latency_us_p99\": {},\n\
             {indent}  \"latency_us_mean\": {},\n{indent}  \"latency_us_max\": {},\n\
             {indent}  \"saturated\": {},\n{indent}  \"cache_hits\": {},\n\
             {indent}  \"cache_hit_rate\": {:.4},\n{indent}  \"failures\": {},\n\
             {indent}  \"correlated_responses\": {}\n{indent}}}",
            self.core,
            self.connections,
            self.requests,
            self.rate,
            self.elapsed.as_secs_f64(),
            self.throughput,
            self.latency.quantile(0.5),
            self.latency.quantile(0.99),
            self.latency.mean(),
            self.latency.max(),
            self.latency.saturated(),
            self.hits,
            self.hit_rate(),
            self.failures,
            self.correlated,
        )
    }
}

/// Drives one load point against `addr`: `connections` client threads,
/// closed-loop unless `rate > 0`.
fn run_point(
    addr: std::net::SocketAddr,
    core: &'static str,
    items: &Arc<Vec<WorkItem>>,
    platform: &Platform,
    connections: usize,
    requests: u64,
    rate: f64,
) -> PointResult {
    let next = Arc::new(AtomicU64::new(0));
    let latency_us = Arc::new(Histogram::new());
    let interval = if rate > 0.0 {
        Duration::from_secs_f64(1.0 / rate)
    } else {
        Duration::ZERO
    };
    let wall = Instant::now();
    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|w| {
                let items = &items;
                let platform = &platform;
                let next = &next;
                let latency_us = &latency_us;
                scope.spawn(move || {
                    if rate > 0.0 {
                        run_open(
                            addr,
                            items,
                            platform,
                            wall,
                            w as u64,
                            connections as u64,
                            requests,
                            interval,
                            latency_us,
                        )
                    } else {
                        run_closed(addr, items, platform, next, requests, latency_us)
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = wall.elapsed();
    PointResult {
        core,
        connections,
        requests,
        rate,
        elapsed,
        throughput: requests as f64 / elapsed.as_secs_f64(),
        latency: latency_us,
        hits: outcomes.iter().map(|o| o.hits).sum(),
        failures: outcomes.iter().map(|o| o.failures).sum(),
        correlated: outcomes.iter().map(|o| o.correlated).sum(),
    }
}

/// Rejects a zero flag value with a flag-specific message (the same
/// discipline as `bench::jobs_or`): zero connections or requests cannot
/// make progress, so it is a configuration error, not a degenerate load.
fn nonzero(value: u64, flag: &str, why: &str) -> u64 {
    if value == 0 {
        eprintln!("redistload: --{flag} must be at least 1 ({why})");
        std::process::exit(2);
    }
    value
}

/// Validates a connection count against the generator's ceiling.
fn check_connections(conns: usize, what: &str) -> usize {
    if conns == 0 || conns > MAX_CONNECTIONS {
        eprintln!("redistload: {what} must be in 1..={MAX_CONNECTIONS}, got {conns}");
        std::process::exit(2);
    }
    conns
}

/// Starts an in-process server sized for a load point: the queue must
/// absorb a full closed-loop burst (every connection with a request in
/// flight at once) or `queue_full` rejections show up as load-dependent
/// noise in a correctness campaign.
fn host_for_point(core: ServingCore, connections: usize) -> server::ServerHandle {
    let config = ServerConfig {
        core,
        queue_depth: (2 * connections).max(1024),
        ..ServerConfig::default()
    };
    server::start(config).expect("start in-process server")
}

/// The serving-scale campaign: thread-core baseline at the first count,
/// event core at every count, fresh server per point.
fn run_campaign(
    counts: &[usize],
    requests_arg: u64,
    items: &Arc<Vec<WorkItem>>,
    platform: &Platform,
    distinct: usize,
    n: usize,
    out_path: &str,
) {
    let baseline_conns = counts[0];
    let mut points: Vec<PointResult> = Vec::new();

    let specs: Vec<(ServingCore, usize)> = std::iter::once((ServingCore::Threads, baseline_conns))
        .chain(counts.iter().map(|&c| (ServingCore::EventLoop, c)))
        .collect();
    for (core, conns) in specs {
        // Every connection must get at least a couple of requests or the
        // point only measures connection setup.
        let requests = requests_arg.max(2 * conns as u64);
        let handle = host_for_point(core, conns);
        let label = core.label();
        eprintln!(
            "redistload: campaign point core={label} connections={conns} requests={requests}"
        );
        let point = run_point(handle.addr(), label, items, platform, conns, requests, 0.0);
        let stats = handle.shutdown();
        eprintln!(
            "redistload:   {:.1} req/s, p50 {} us, p99 {} us, {} failures \
             (server: {} served, {} rejected)",
            point.throughput,
            point.latency.quantile(0.5),
            point.latency.quantile(0.99),
            point.failures,
            stats.served,
            stats.rejected_queue_full + stats.rejected_too_large,
        );
        points.push(point);
    }

    let baseline = &points[0];
    let failures: u64 = points.iter().map(|p| p.failures).sum();
    let point_json: Vec<String> = points[1..].iter().map(|p| p.json("    ")).collect();
    let ratios: Vec<String> = points[1..]
        .iter()
        .map(|p| {
            format!(
                "    {{ \"connections\": {}, \"throughput_vs_baseline\": {:.3} }}",
                p.connections,
                p.throughput / baseline.throughput
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"campaign\": \"serve_scale_v1\",\n  \"matrix_n\": {n},\n  \
         \"distinct_matrices\": {distinct},\n  \
         \"baseline_connections\": {baseline_conns},\n  \
         \"baseline\": {},\n  \"points\": [\n    {}\n  ],\n  \
         \"throughput_ratios\": [\n{}\n  ],\n  \"failures\": {failures}\n}}\n",
        baseline.json("  "),
        point_json.join(",\n    "),
        ratios.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write campaign JSON");
    println!("redistload: serve_scale_v1 campaign -> {out_path}");

    if failures > 0 {
        eprintln!("redistload: {failures} incorrect responses across the campaign");
        std::process::exit(1);
    }
}

/// Converts one wire delta exactly as the server's session layer does —
/// [`kpbs::traffic::message_ticks`] is the single byte→tick conversion
/// point, so the mirror and the server always agree on the resulting edit.
fn native_delta(platform: &Platform, d: &WireDelta) -> kpbs::MatrixDelta {
    match *d {
        WireDelta::SetCell {
            sender,
            receiver,
            bytes,
        } => kpbs::MatrixDelta::Set {
            sender: sender as usize,
            receiver: receiver as usize,
            ticks: kpbs::traffic::message_ticks(platform, TickScale::MILLIS, bytes),
        },
        WireDelta::GrowNodes { senders, receivers } => kpbs::MatrixDelta::GrowNodes {
            senders: senders as usize,
            receivers: receivers as usize,
        },
        WireDelta::DropSender(i) => kpbs::MatrixDelta::DropSender(i as usize),
        WireDelta::DropReceiver(j) => kpbs::MatrixDelta::DropReceiver(j as usize),
    }
}

/// Per-cell delivered ticks of `schedule`, resolved through `inst`'s graph
/// (edge ids are meaningless without it).
fn delivered_cells(
    inst: &kpbs::Instance,
    schedule: &kpbs::Schedule,
) -> BTreeMap<(usize, usize), u64> {
    let mut cells = BTreeMap::new();
    for step in &schedule.steps {
        for tr in &step.transfers {
            let key = (inst.graph.left_of(tr.edge), inst.graph.right_of(tr.edge));
            *cells.entry(key).or_insert(0) += tr.amount;
        }
    }
    cells
}

/// A cold (stateless) plan of the mirror's current post-delta matrix,
/// built canonically — row-major cells, fresh OGGP — exactly like a plan
/// request for the same matrix would be.
fn cold_reference(mirror: &DeltaPlanner) -> (kpbs::Instance, kpbs::Schedule) {
    let target = mirror.target_matrix();
    let inst = mirror.instance();
    let (n1, n2) = (inst.graph.left_count(), inst.graph.right_count());
    let mut g = bipartite::Graph::new(n1, n2);
    for i in 0..n1 {
        for j in 0..n2 {
            let w = target.get(i, j);
            if w > 0 {
                g.add_edge(i, j, w);
            }
        }
    }
    let cold_inst = kpbs::Instance::new(g, inst.k, inst.beta);
    let cold = kpbs::oggp(&cold_inst);
    (cold_inst, cold)
}

/// One serving core's leg of the streaming-admission campaign.
struct SessionPoint {
    core: &'static str,
    rounds: u64,
    elapsed: Duration,
    latency_us: Histogram,
    repairs: u64,
    repeels: u64,
    colds: u64,
    commits: u64,
    byte_failures: u64,
    delivery_failures: u64,
}

impl SessionPoint {
    fn failures(&self) -> u64 {
        self.byte_failures + self.delivery_failures
    }

    fn json(&self, indent: &str) -> String {
        format!(
            "{{\n{indent}  \"core\": \"{}\",\n{indent}  \"rounds\": {},\n\
             {indent}  \"elapsed_s\": {:.4},\n{indent}  \"deltas_per_s\": {:.2},\n\
             {indent}  \"latency_us_p50\": {},\n{indent}  \"latency_us_p99\": {},\n\
             {indent}  \"repairs\": {},\n{indent}  \"repeels\": {},\n\
             {indent}  \"colds\": {},\n{indent}  \"commits\": {},\n\
             {indent}  \"byte_failures\": {},\n{indent}  \"delivery_failures\": {}\n\
             {indent}}}",
            self.core,
            self.rounds,
            self.elapsed.as_secs_f64(),
            self.rounds as f64 / self.elapsed.as_secs_f64().max(1e-9),
            self.latency_us.quantile(0.5),
            self.latency_us.quantile(0.99),
            self.repairs,
            self.repeels,
            self.colds,
            self.commits,
            self.byte_failures,
            self.delivery_failures,
        )
    }
}

/// Streams one live session against `core`: OPEN, then `rounds` coflow
/// delta batches (arrivals and departures), a COMMIT every eighth round,
/// CLOSE at the end. Every response is triple-checked: byte-equal to the
/// local mirror planner, delivering exactly what a cold plan of the same
/// post-delta matrix delivers, and inside the replan cost bound. With
/// `rate > 0` each batch gets an open-loop send deadline (`base + k/rate`)
/// and latency is measured from that deadline — the same
/// coordinated-omission correction as the plan-request path.
fn run_session_point(
    core: ServingCore,
    rounds: u64,
    delta_cells: u64,
    rate: f64,
    n: usize,
    platform: &Platform,
) -> SessionPoint {
    let handle = host_for_point(core, 1);
    let addr = handle.addr();
    let mut point = SessionPoint {
        core: core.label(),
        rounds,
        elapsed: Duration::ZERO,
        latency_us: Histogram::new(),
        repairs: 0,
        repeels: 0,
        colds: 0,
        commits: 0,
        byte_failures: 0,
        delivery_failures: 0,
    };
    let fail = |point: &mut SessionPoint, round: u64, what: &str| {
        eprintln!("redistload: [{}] round {round}: {what}", core.label());
        point.byte_failures += 1;
    };

    // The same deterministic campaign on every core, so the legs are
    // directly comparable.
    let mut rng = Rng::new(0x5E55_1034_0000_0001);
    let mut traffic = TrafficMatrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            if rng.below(10) < 4 {
                traffic.set(r, c, (1 + rng.below(64)) * 1_000_000);
            }
        }
    }
    if traffic.total_bytes() == 0 {
        traffic.set(0, 0, 8_000_000);
    }
    let (inst, _) = traffic.to_instance(platform, BETA_SECONDS, TickScale::MILLIS);
    let mut mirror = DeltaPlanner::new(inst);

    let mut c = match Client::connect_with_retry(addr, CONNECT_ATTEMPTS) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("redistload: session connect failed: {e}");
            point.byte_failures += 1;
            handle.shutdown();
            return point;
        }
    };
    let session_id = match c.session(&client::session_open(1, &traffic, platform, BETA_SECONDS)) {
        Ok(PlanResponse::Session {
            session_id,
            generation,
            level,
            schedule,
            ..
        }) => {
            if generation != 0
                || level != SessionLevel::Opened
                || wire::encode_schedule(&schedule) != wire::encode_schedule(mirror.schedule())
            {
                fail(&mut point, 0, "OPEN response disagrees with the mirror");
            }
            session_id
        }
        other => {
            eprintln!("redistload: session OPEN failed: {other:?}");
            point.byte_failures += 1;
            handle.shutdown();
            return point;
        }
    };

    let interval = if rate > 0.0 {
        Duration::from_secs_f64(1.0 / rate)
    } else {
        Duration::ZERO
    };
    let base = Instant::now();
    for round in 0..rounds {
        let deadline = base + interval * (round as u32);
        let now = Instant::now();
        if deadline > now {
            std::thread::sleep(deadline - now);
        }
        // A coflow tick: `delta_cells` edits, ~40% departures (cell
        // cleared), the rest arrivals or reshapes of 1..96 MB.
        let batch: Vec<WireDelta> = (0..delta_cells)
            .map(|_| WireDelta::SetCell {
                sender: rng.below(n as u64) as u32,
                receiver: rng.below(n as u64) as u32,
                bytes: if rng.below(10) < 4 {
                    0
                } else {
                    (1 + rng.below(96)) * 1_000_000
                },
            })
            .collect();
        let local: Vec<kpbs::MatrixDelta> =
            batch.iter().map(|d| native_delta(platform, d)).collect();
        let want = mirror.replan(&local);

        let sent = if rate > 0.0 { deadline } else { Instant::now() };
        let resp = match c.session(&client::session_delta(100 + round, session_id, batch)) {
            Ok(r) => r,
            Err(e) => {
                fail(&mut point, round, &format!("transport error: {e}"));
                break;
            }
        };
        point
            .latency_us
            .record(sent.elapsed().as_micros().min(u64::MAX as u128) as u64);
        match resp {
            PlanResponse::Session {
                session_id: sid,
                generation,
                level,
                schedule,
                cost,
                lower_bound,
                ..
            } => {
                let bytes = wire::encode_schedule(&schedule);
                if sid != session_id
                    || generation != want.generation
                    || level.label() != want.level.label()
                    || cost != want.cost
                    || lower_bound != want.lower_bound
                    || bytes != wire::encode_schedule(mirror.schedule())
                {
                    fail(
                        &mut point,
                        round,
                        &format!(
                            "patched schedule disagrees with the mirror \
                             (level {}, cost {cost} vs {}, gen {generation} vs {})",
                            level.label(),
                            want.cost,
                            want.generation
                        ),
                    );
                }
                match level {
                    SessionLevel::Repair => point.repairs += 1,
                    SessionLevel::RePeel => point.repeels += 1,
                    SessionLevel::Cold => point.colds += 1,
                    _ => fail(&mut point, round, "DELTA answered a non-delta level"),
                }

                // Independent cold cross-check: a stateless plan of the
                // same post-delta matrix must deliver the same cells, the
                // patched cost must stay inside the replan bound, and a
                // cold-fallback response must byte-equal the cold plan.
                let (cold_inst, cold) = cold_reference(&mirror);
                let served = delivered_cells(mirror.instance(), &schedule);
                if served != delivered_cells(&cold_inst, &cold) {
                    eprintln!(
                        "redistload: [{}] round {round}: patched schedule does not \
                         deliver the post-delta matrix",
                        core.label()
                    );
                    point.delivery_failures += 1;
                }
                let bound =
                    (kpbs::delta::REPLAN_COST_FACTOR * want.lower_bound.max(1)).max(cold.cost());
                if cost > bound {
                    eprintln!(
                        "redistload: [{}] round {round}: cost {cost} above replan \
                         bound {bound}",
                        core.label()
                    );
                    point.delivery_failures += 1;
                }
                if level == SessionLevel::Cold && bytes != wire::encode_schedule(&cold) {
                    eprintln!(
                        "redistload: [{}] round {round}: cold fallback is not \
                         byte-identical to a stateless cold plan",
                        core.label()
                    );
                    point.delivery_failures += 1;
                }
            }
            other => fail(
                &mut point,
                round,
                &format!("unexpected response: {other:?}"),
            ),
        }

        if (round + 1).is_multiple_of(8) {
            match c.session(&client::session_commit(10_000 + round, session_id)) {
                Ok(PlanResponse::Session {
                    level, generation, ..
                }) if level == SessionLevel::Committed && generation == mirror.generation() => {
                    point.commits += 1;
                }
                other => fail(&mut point, round, &format!("COMMIT failed: {other:?}")),
            }
        }
    }
    point.elapsed = base.elapsed();

    match c.session(&client::session_close(u64::MAX, session_id)) {
        Ok(PlanResponse::Session {
            level: SessionLevel::Closed,
            ..
        }) => {}
        other => fail(&mut point, rounds, &format!("CLOSE failed: {other:?}")),
    }
    let stats = handle.shutdown();
    if stats.session_repairs + stats.session_repeels + stats.session_colds
        != point.repairs + point.repeels + point.colds
        || stats.sessions_open != 0
    {
        fail(
            &mut point,
            rounds,
            "server session counters disagree with the client's ledger",
        );
    }
    point
}

/// The streaming-admission campaign: the identical delta stream against a
/// live session on each serving core, written as `serve_session_v1` JSON.
fn run_session_campaign(
    rounds: u64,
    delta_cells: u64,
    rate: f64,
    n: usize,
    platform: &Platform,
    out_path: &str,
) {
    let mut points = Vec::new();
    for core in [ServingCore::Threads, ServingCore::EventLoop] {
        eprintln!(
            "redistload: session campaign core={} rounds={rounds} \
             delta_cells={delta_cells}",
            core.label()
        );
        let point = run_session_point(core, rounds, delta_cells, rate, n, platform);
        eprintln!(
            "redistload:   {} repairs, {} repeels, {} colds, p50 {} us, \
             {} failures",
            point.repairs,
            point.repeels,
            point.colds,
            point.latency_us.quantile(0.5),
            point.failures(),
        );
        points.push(point);
    }
    let failures: u64 = points.iter().map(|p| p.failures()).sum();
    let point_json: Vec<String> = points.iter().map(|p| p.json("    ")).collect();
    let json = format!(
        "{{\n  \"campaign\": \"serve_session_v1\",\n  \"matrix_n\": {n},\n  \
         \"rounds\": {rounds},\n  \"delta_cells\": {delta_cells},\n  \
         \"rate_dps\": {rate:.1},\n  \"points\": [\n    {}\n  ],\n  \
         \"failures\": {failures}\n}}\n",
        point_json.join(",\n    "),
    );
    std::fs::write(out_path, &json).expect("write session campaign JSON");
    println!("redistload: serve_session_v1 campaign -> {out_path}");
    if failures > 0 {
        eprintln!("redistload: {failures} session verification failures");
        std::process::exit(1);
    }
}

fn main() {
    let requests_arg: u64 = nonzero(
        arg("requests", 256),
        "requests",
        "an empty campaign checks nothing",
    );
    let distinct: usize = nonzero(
        arg("distinct", 16),
        "distinct",
        "at least one matrix is needed",
    ) as usize;
    let n: usize = nonzero(arg("n", 12), "n", "matrices need at least one node") as usize;

    if arg_str("sessions").is_some() {
        let rounds = nonzero(arg("sessions", 0), "sessions", "a session needs deltas");
        let delta_cells = nonzero(
            arg("delta-cells", 2),
            "delta-cells",
            "an empty batch edits nothing",
        );
        let rate: f64 = arg("rate", 0.0);
        if rate < 0.0 || !rate.is_finite() {
            eprintln!("redistload: --rate must be a finite non-negative deltas/s");
            std::process::exit(2);
        }
        let out_path: String = arg("out", "BENCH_session.json".to_string());
        let platform = Platform::new(n, n, 100.0, 100.0, 400.0);
        run_session_campaign(rounds, delta_cells, rate, n, &platform, &out_path);
        return;
    }

    let out_path: String = arg("out", "BENCH_serve.json".to_string());

    let platform = Platform::new(n, n, 100.0, 100.0, 400.0);
    eprintln!("redistload: planning {distinct} cold reference instances (n={n})...");
    let items = Arc::new(build_workload(distinct, n, &platform));

    if let Some(spec) = arg_str("campaign") {
        let counts: Vec<usize> = spec
            .split(',')
            .map(|s| {
                let c = s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("redistload: bad --campaign list {spec:?}");
                    std::process::exit(2);
                });
                check_connections(c, "--campaign connection count")
            })
            .collect();
        if counts.is_empty() {
            eprintln!("redistload: --campaign needs at least one connection count");
            std::process::exit(2);
        }
        run_campaign(
            &counts,
            requests_arg,
            &items,
            &platform,
            distinct,
            n,
            &out_path,
        );
        return;
    }

    let connections = check_connections(arg("connections", 16), "--connections");
    let rate: f64 = arg("rate", 0.0);
    if rate < 0.0 || !rate.is_finite() {
        eprintln!("redistload: --rate must be a finite non-negative req/s");
        std::process::exit(2);
    }
    let core: ServingCore = match arg_str("core") {
        Some(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("redistload: {e}");
            std::process::exit(2);
        }),
        None => ServingCore::default(),
    };
    // 0 = auto-size to the connection count (self-hosted servers only).
    let queue_depth: usize = arg("queue-depth", 0u64) as usize;
    let external_addr = arg_str("addr");

    // Self-host unless pointed at an external daemon.
    let hosted = if external_addr.is_none() {
        let config = ServerConfig {
            core,
            queue_depth: if queue_depth > 0 {
                queue_depth
            } else {
                (2 * connections).max(ServerConfig::default().queue_depth)
            },
            ..ServerConfig::default()
        };
        Some(server::start(config).expect("start in-process server"))
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&hosted, &external_addr) {
        (Some(h), _) => h.addr(),
        (None, Some(a)) => a.parse().unwrap_or_else(|e| {
            eprintln!("redistload: bad --addr {a}: {e}");
            std::process::exit(2);
        }),
        (None, None) => unreachable!(),
    };

    let requests = requests_arg;
    eprintln!(
        "redistload: {requests} requests, {connections} connections{} against {addr}",
        if rate > 0.0 {
            format!(", open-loop at {rate:.1} req/s")
        } else {
            ", closed-loop".to_string()
        }
    );
    let core_label = if hosted.is_some() {
        core.label()
    } else {
        "external"
    };
    let point = run_point(
        addr,
        core_label,
        &items,
        &platform,
        connections,
        requests,
        rate,
    );
    let mut failures = point.failures;

    // Scrape the server-side view while the daemon is still up: validate
    // the exposition and lift the fields BENCH_serve.json embeds.
    let server_json = match client::fetch_metrics(addr) {
        Ok(text) => match metrics::validate_exposition(&text) {
            Ok(()) => {
                let sample = |name: &str, labels: &[(&str, &str)]| {
                    metrics::find_sample(&text, name, labels).unwrap_or(0.0)
                };
                format!(
                    "{{\n    \"requests_planned\": {},\n    \
                     \"requests_cache_hit\": {},\n    \
                     \"requests_shed\": {},\n    \
                     \"queue_wait_us_p50\": {},\n    \
                     \"queue_wait_us_p99\": {},\n    \
                     \"service_us_p50\": {},\n    \
                     \"service_us_p99\": {},\n    \
                     \"request_bytes_total\": {}\n  }}",
                    sample("redistd_requests_total", &[("outcome", "planned")]),
                    sample("redistd_requests_total", &[("outcome", "cache_hit")]),
                    sample("redistd_requests_total", &[("outcome", "shed_queue_full")])
                        + sample("redistd_requests_total", &[("outcome", "shed_too_large")]),
                    sample("redistd_queue_wait_us", &[("quantile", "0.5")]),
                    sample("redistd_queue_wait_us", &[("quantile", "0.99")]),
                    sample("redistd_service_us", &[("quantile", "0.5")]),
                    sample("redistd_service_us", &[("quantile", "0.99")]),
                    sample("redistd_request_bytes_total", &[]),
                )
            }
            Err(e) => {
                eprintln!("redistload: METRICS exposition invalid: {e}");
                failures += 1;
                "null".to_string()
            }
        },
        Err(e) => {
            eprintln!("redistload: METRICS scrape failed: {e}");
            failures += 1;
            "null".to_string()
        }
    };

    if let Some(h) = hosted {
        let stats = h.shutdown();
        eprintln!(
            "redistload: server saw {} served, {} cache hits, {} rejected",
            stats.served,
            stats.cache.hits,
            stats.rejected_queue_full + stats.rejected_too_large
        );
    }

    let json = format!(
        "{{\n  \"campaign\": \"serve_loadgen_v1\",\n  \"point\": {},\n  \
         \"distinct_matrices\": {distinct},\n  \"matrix_n\": {n},\n  \
         \"failures\": {failures},\n  \"server\": {server_json}\n}}\n",
        point.json("  "),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!(
        "redistload: {:.1} req/s, p50 {} us, p99 {} us, hit rate {:.2} -> {out_path}",
        point.throughput,
        point.latency.quantile(0.5),
        point.latency.quantile(0.99),
        point.hit_rate(),
    );

    if failures > 0 {
        eprintln!("redistload: {failures} incorrect responses");
        std::process::exit(1);
    }
    // With requests > distinct every repeat should be a hit; a stone-cold
    // cache means the fingerprint key or the LRU is broken.
    if requests > distinct as u64 && point.hits == 0 {
        eprintln!("redistload: no cache hits despite repeated matrices");
        std::process::exit(1);
    }
}
