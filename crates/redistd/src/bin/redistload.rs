//! `redistload` — closed-loop load generator and correctness checker for
//! `redistd`.
//!
//! ```sh
//! redistload [--addr HOST:PORT] [--connections 16] [--requests 256]
//!            [--distinct 16] [--n 12] [--out BENCH_serve.json]
//! ```
//!
//! Without `--addr` it hosts a server in-process on a free port (the CI
//! mode used by `scripts/check.sh`). It generates `--distinct`
//! deterministic random traffic matrices, replays them round-robin from
//! `--connections` closed-loop client threads, and for every response
//! checks that:
//!
//! * the schedule byte-compares equal (via `wire::encode_schedule`) to a
//!   cold plan of the same instance computed locally — cache hits must be
//!   indistinguishable from misses;
//! * the schedule passes [`kpbs::validate`] and its cost is bounded below
//!   by [`kpbs::lower_bound`].
//!
//! * every `Ok` response carries a non-zero `server_id` (the server-minted
//!   correlation id that joins the response to the server's flight record
//!   and span timeline).
//!
//! After the run it scrapes the server's `METRICS` exposition, validates
//! its well-formedness, and writes a `BENCH_serve.json` campaign file with
//! the client-side view (throughput, latency quantiles, cache hit rate)
//! *and* the scraped server-side view (queue wait, service time, outcome
//! counts) side by side. Exits non-zero on any incorrect response, a
//! suspiciously cold cache, or a malformed exposition.

use kpbs::traffic::TickScale;
use kpbs::{Platform, TrafficMatrix};
use redistd::client::{self, Client};
use redistd::server::{self, ServerConfig};
use redistd::wire::{self, Algo, PlanResponse};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use telemetry::{metrics, Histogram};

const BETA_SECONDS: f64 = 0.05;

/// Deterministic xorshift64* — the workspace is std-only, so no `rand`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn arg<T: std::str::FromStr>(name: &str, default: T) -> T {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            if let Some(v) = args.next() {
                if let Ok(parsed) = v.parse() {
                    return parsed;
                }
                eprintln!("redistload: bad value for --{name}");
                std::process::exit(2);
            }
        }
    }
    default
}

fn arg_str(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

/// One pre-planned workload item: the request to send and the expected
/// schedule bytes from a cold local plan.
struct WorkItem {
    traffic: TrafficMatrix,
    expected_bytes: Vec<u8>,
    expected_cost: u64,
    lower_bound: u64,
}

fn build_workload(distinct: usize, n: usize, platform: &Platform) -> Vec<WorkItem> {
    (0..distinct)
        .map(|i| {
            let mut rng = Rng::new(0xC0FF_EE00 + i as u64);
            let mut traffic = TrafficMatrix::zeros(n, n);
            // ~40% dense, messages 1..64 MB — big enough that every
            // instance needs several steps.
            for r in 0..n {
                for c in 0..n {
                    if rng.below(10) < 4 {
                        traffic.set(r, c, (1 + rng.below(64)) * 1_000_000);
                    }
                }
            }
            // Guarantee non-empty.
            if traffic.total_bytes() == 0 {
                traffic.set(0, 0, 8_000_000);
            }
            let (inst, _) = traffic.to_instance(platform, BETA_SECONDS, TickScale::MILLIS);
            let schedule = kpbs::oggp(&inst);
            kpbs::validate::validate(&inst, &schedule).expect("cold plan must validate");
            WorkItem {
                expected_bytes: wire::encode_schedule(&schedule),
                expected_cost: schedule.cost(),
                lower_bound: kpbs::lower_bound(&inst),
                traffic,
            }
        })
        .collect()
}

struct Outcome {
    hits: u64,
    failures: u64,
    /// Distinct-looking correlation check: how many `Ok` responses carried
    /// a non-zero server-minted id (must equal the responses received).
    correlated: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_connection(
    addr: std::net::SocketAddr,
    items: &[WorkItem],
    platform: &Platform,
    next: &AtomicU64,
    requests: u64,
    latency_us: &Histogram,
) -> Outcome {
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("redistload: connect failed: {e}");
            return Outcome {
                hits: 0,
                failures: 1,
                correlated: 0,
            };
        }
    };
    let mut out = Outcome {
        hits: 0,
        failures: 0,
        correlated: 0,
    };
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= requests {
            return out;
        }
        let item = &items[(i as usize) % items.len()];
        let req = client::request(i, Algo::Oggp, &item.traffic, platform, BETA_SECONDS);
        let start = Instant::now();
        let resp = match client.plan(&req) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("redistload: request {i} transport error: {e}");
                out.failures += 1;
                return out;
            }
        };
        latency_us.record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        match resp {
            PlanResponse::Ok {
                request_id,
                cached,
                schedule,
                cost,
                lower_bound,
                server_id,
                ..
            } => {
                let bytes = wire::encode_schedule(&schedule);
                if request_id != i
                    || bytes != item.expected_bytes
                    || cost != item.expected_cost
                    || lower_bound != item.lower_bound
                    || cost < lower_bound
                {
                    eprintln!(
                        "redistload: request {i} mismatch (cached={cached}, \
                         cost {cost} vs expected {}, lb {lower_bound} vs {})",
                        item.expected_cost, item.lower_bound
                    );
                    out.failures += 1;
                }
                // v2 responses must be correlated: the server mints ids
                // from 1, so 0 means the header field went missing.
                if server_id == 0 {
                    eprintln!("redistload: request {i} carried no server_id");
                    out.failures += 1;
                } else {
                    out.correlated += 1;
                }
                if cached {
                    out.hits += 1;
                }
            }
            other => {
                eprintln!("redistload: request {i} unexpected response: {other:?}");
                out.failures += 1;
            }
        }
    }
}

/// Rejects a zero flag value with a flag-specific message (the same
/// discipline as `bench::jobs_or`): zero connections or requests cannot
/// make progress, so it is a configuration error, not a degenerate load.
fn nonzero(value: u64, flag: &str, why: &str) -> u64 {
    if value == 0 {
        eprintln!("redistload: --{flag} must be at least 1 ({why})");
        std::process::exit(2);
    }
    value
}

fn main() {
    let connections: usize = nonzero(
        arg("connections", 16),
        "connections",
        "0 client threads send nothing",
    ) as usize;
    let requests: u64 = nonzero(
        arg("requests", 256),
        "requests",
        "an empty campaign checks nothing",
    );
    let distinct: usize = nonzero(
        arg("distinct", 16),
        "distinct",
        "at least one matrix is needed",
    ) as usize;
    let n: usize = nonzero(arg("n", 12), "n", "matrices need at least one node") as usize;
    let out_path: String = arg("out", "BENCH_serve.json".to_string());
    let external_addr = arg_str("addr");

    let platform = Platform::new(n, n, 100.0, 100.0, 400.0);
    eprintln!("redistload: planning {distinct} cold reference instances (n={n})...");
    let items = Arc::new(build_workload(distinct, n, &platform));

    // Self-host unless pointed at an external daemon.
    let hosted = if external_addr.is_none() {
        Some(server::start(ServerConfig::default()).expect("start in-process server"))
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&hosted, &external_addr) {
        (Some(h), _) => h.addr(),
        (None, Some(a)) => a.parse().unwrap_or_else(|e| {
            eprintln!("redistload: bad --addr {a}: {e}");
            std::process::exit(2);
        }),
        (None, None) => unreachable!(),
    };

    eprintln!(
        "redistload: {requests} requests, {connections} connections, \
         {distinct} distinct matrices against {addr}"
    );
    let next = Arc::new(AtomicU64::new(0));
    let latency_us = Arc::new(Histogram::new());
    let wall = Instant::now();
    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                let items = &items;
                let platform = &platform;
                let next = &next;
                let latency_us = &latency_us;
                scope.spawn(move || {
                    run_connection(addr, items, platform, next, requests, latency_us)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = wall.elapsed();

    let hits: u64 = outcomes.iter().map(|o| o.hits).sum();
    let mut failures: u64 = outcomes.iter().map(|o| o.failures).sum();
    let correlated: u64 = outcomes.iter().map(|o| o.correlated).sum();
    let hit_rate = hits as f64 / requests as f64;
    let throughput = requests as f64 / elapsed.as_secs_f64();

    // Scrape the server-side view while the daemon is still up: validate
    // the exposition and lift the fields BENCH_serve.json embeds.
    let server_json = match client::fetch_metrics(addr) {
        Ok(text) => match metrics::validate_exposition(&text) {
            Ok(()) => {
                let sample = |name: &str, labels: &[(&str, &str)]| {
                    metrics::find_sample(&text, name, labels).unwrap_or(0.0)
                };
                format!(
                    "{{\n    \"requests_planned\": {},\n    \
                     \"requests_cache_hit\": {},\n    \
                     \"requests_shed\": {},\n    \
                     \"queue_wait_us_p50\": {},\n    \
                     \"queue_wait_us_p99\": {},\n    \
                     \"service_us_p50\": {},\n    \
                     \"service_us_p99\": {},\n    \
                     \"request_bytes_total\": {}\n  }}",
                    sample("redistd_requests_total", &[("outcome", "planned")]),
                    sample("redistd_requests_total", &[("outcome", "cache_hit")]),
                    sample("redistd_requests_total", &[("outcome", "shed_queue_full")])
                        + sample("redistd_requests_total", &[("outcome", "shed_too_large")]),
                    sample("redistd_queue_wait_us", &[("quantile", "0.5")]),
                    sample("redistd_queue_wait_us", &[("quantile", "0.99")]),
                    sample("redistd_service_us", &[("quantile", "0.5")]),
                    sample("redistd_service_us", &[("quantile", "0.99")]),
                    sample("redistd_request_bytes_total", &[]),
                )
            }
            Err(e) => {
                eprintln!("redistload: METRICS exposition invalid: {e}");
                failures += 1;
                "null".to_string()
            }
        },
        Err(e) => {
            eprintln!("redistload: METRICS scrape failed: {e}");
            failures += 1;
            "null".to_string()
        }
    };

    if let Some(h) = hosted {
        let stats = h.shutdown();
        eprintln!(
            "redistload: server saw {} served, {} cache hits, {} rejected",
            stats.served,
            stats.cache.hits,
            stats.rejected_queue_full + stats.rejected_too_large
        );
    }

    let json = format!(
        "{{\n  \"campaign\": \"serve_loadgen_v1\",\n  \"requests\": {requests},\n  \
         \"connections\": {connections},\n  \"distinct_matrices\": {distinct},\n  \
         \"matrix_n\": {n},\n  \"elapsed_s\": {:.4},\n  \"throughput_rps\": {:.2},\n  \
         \"latency_us_p50\": {},\n  \"latency_us_p99\": {},\n  \"latency_us_mean\": {},\n  \
         \"latency_us_max\": {},\n  \"saturated\": {},\n  \
         \"cache_hits\": {hits},\n  \"cache_hit_rate\": {:.4},\n  \"failures\": {failures},\n  \
         \"correlated_responses\": {correlated},\n  \"server\": {server_json}\n}}\n",
        elapsed.as_secs_f64(),
        throughput,
        latency_us.quantile(0.5),
        latency_us.quantile(0.99),
        latency_us.mean(),
        latency_us.max(),
        latency_us.saturated(),
        hit_rate,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!(
        "redistload: {throughput:.1} req/s, p50 {} us, p99 {} us, hit rate {hit_rate:.2} \
         -> {out_path}",
        latency_us.quantile(0.5),
        latency_us.quantile(0.99),
    );

    if failures > 0 {
        eprintln!("redistload: {failures} incorrect responses");
        std::process::exit(1);
    }
    // With requests > distinct every repeat should be a hit; a stone-cold
    // cache means the fingerprint key or the LRU is broken.
    if requests > distinct as u64 && hits == 0 {
        eprintln!("redistload: no cache hits despite repeated matrices");
        std::process::exit(1);
    }
}
