//! The serving core: listener, connection threads, bounded request queue,
//! worker pool, plan cache, statistics, graceful shutdown.
//!
//! ```text
//!                        ┌────────────────────────────┐
//!   TCP clients ──────▶  │ accept loop (non-blocking) │
//!                        └──────────┬─────────────────┘
//!                                   │ one thread per connection
//!                        ┌──────────▼─────────────┐   reject: queue_full /
//!                        │ decode + admission     │──▶ matrix_too_large
//!                        └──────────┬─────────────┘
//!                                   │ try_push (never blocks)
//!                        ┌──────────▼─────────────┐
//!                        │ BoundedQueue<Job>      │  ← backpressure boundary
//!                        └──────────┬─────────────┘
//!                                   │ pop
//!                        ┌──────────▼─────────────┐   ┌────────────────┐
//!                        │ worker pool (N threads)│ ⇄ │ sharded LRU    │
//!                        │ fingerprint → plan     │   │ plan cache     │
//!                        └──────────┬─────────────┘   └────────────────┘
//!                                   │ reply channel
//!                        connection thread writes the response frame
//! ```
//!
//! The design reuses the discipline of [`kpbs::batch`]: work is handed to a
//! fixed pool through one queue, each request's work counters are measured
//! with thread-local snapshots on the worker that planned it, and planning
//! is a pure function of the request — so a response is byte-identical no
//! matter which worker produced it or whether the cache was warm.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is drain-based: stop accepting,
//! close the queue (pushes fail, pops drain), join workers (every accepted
//! request gets its response), then join connection threads.

use crate::cache::{CacheStats, ShardedLru};
use crate::queue::{BoundedQueue, PushError};
use crate::wire::{self, Algo, Incoming, PlanRequest, PlanResponse, RejectReason};
use kpbs::traffic::TickScale;
use kpbs::{Platform, Schedule};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::counters::{self, Counter, COUNTER_COUNT};
use telemetry::Histogram;

/// How long a blocked read waits before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads planning requests.
    pub workers: usize,
    /// Bounded queue depth — requests beyond this are rejected with
    /// `queue_full`, never buffered.
    pub queue_depth: usize,
    /// Total plan-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Plan-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Admission limit: matrices with more than this many cells are
    /// rejected with `matrix_too_large`.
    pub max_cells: u64,
    /// Test hook: artificial per-request think time in the worker, used to
    /// provoke deterministic overload/drain behaviour in tests. 0 in
    /// production.
    pub worker_think_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_depth: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            max_cells: 1 << 20,
            worker_think_ms: 0,
        }
    }
}

/// A cached (or fresh) planning outcome.
#[derive(Debug, Clone)]
struct PlanOutcome {
    schedule: Schedule,
    cost: u64,
    lower_bound: u64,
}

struct Job {
    req: PlanRequest,
    reply: mpsc::Sender<PlanResponse>,
}

struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    queue: BoundedQueue<Job>,
    cache: ShardedLru<PlanOutcome>,
    started: Instant,
    served: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_too_large: AtomicU64,
    errors: AtomicU64,
    service_us: Histogram,
}

/// A point-in-time operational report (the typed form of `STATS`).
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests answered `Ok` (cache hits and misses).
    pub served: u64,
    /// Plan-cache statistics.
    pub cache: CacheStats,
    /// Requests rejected because the queue was full (or shutting down).
    pub rejected_queue_full: u64,
    /// Requests rejected because the matrix exceeded `max_cells`.
    pub rejected_too_large: u64,
    /// Malformed requests answered with an error frame.
    pub errors: u64,
    /// Items currently queued.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Configured worker count.
    pub workers: usize,
    /// Service-time p50 in microseconds (admission to response ready).
    pub p50_us: u64,
    /// Service-time p99 in microseconds.
    pub p99_us: u64,
    /// Mean service time in microseconds.
    pub mean_us: u64,
}

impl ServerStats {
    fn gather(shared: &Shared) -> ServerStats {
        ServerStats {
            served: shared.served.load(Ordering::Relaxed),
            cache: shared.cache.stats(),
            rejected_queue_full: shared.rejected_queue_full.load(Ordering::Relaxed),
            rejected_too_large: shared.rejected_too_large.load(Ordering::Relaxed),
            errors: shared.errors.load(Ordering::Relaxed),
            queue_depth: shared.queue.len(),
            queue_capacity: shared.queue.capacity(),
            workers: shared.config.workers,
            p50_us: shared.service_us.quantile(0.5),
            p99_us: shared.service_us.quantile(0.99),
            mean_us: shared.service_us.mean(),
        }
    }

    /// The plaintext rendering sent in answer to `STATS`.
    pub fn render(&self, uptime: Duration) -> String {
        format!(
            "redistd stats\n\
             uptime_s: {:.1}\n\
             workers: {}\n\
             queue_depth: {}\n\
             queue_capacity: {}\n\
             served: {}\n\
             cache_hits: {}\n\
             cache_misses: {}\n\
             cache_hit_rate: {:.4}\n\
             cache_len: {}\n\
             cache_evictions: {}\n\
             rejected_queue_full: {}\n\
             rejected_too_large: {}\n\
             errors: {}\n\
             service_us_p50: {}\n\
             service_us_p99: {}\n\
             service_us_mean: {}\n",
            uptime.as_secs_f64(),
            self.workers,
            self.queue_depth,
            self.queue_capacity,
            self.served,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.len,
            self.cache.evictions,
            self.rejected_queue_full,
            self.rejected_too_large,
            self.errors,
            self.p50_us,
            self.p99_us,
            self.mean_us,
        )
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (the process exiting
/// reaps them); call `shutdown` for a clean drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Starts a server on `config.addr` and returns its handle once the
/// listener is bound (requests can be sent immediately).
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_depth),
        cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        served: AtomicU64::new(0),
        rejected_queue_full: AtomicU64::new(0),
        rejected_too_large: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        service_us: Histogram::new(),
        config,
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("redistd-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let shared = shared.clone();
        let connections = connections.clone();
        std::thread::Builder::new()
            .name("redistd-accept".into())
            .spawn(move || accept_loop(&shared, listener, &connections))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
        connections,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats::gather(&self.shared)
    }

    /// Asks the server to shut down without waiting (used by signal
    /// handlers); follow with [`ServerHandle::shutdown`] to drain and join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, drain every admitted request to
    /// its response, join all threads. Returns the final statistics.
    pub fn shutdown(mut self) -> ServerStats {
        self.request_shutdown();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        // No new connections exist now; close the queue so workers drain
        // the backlog and exit. Connection threads still waiting on replies
        // get them before they notice the flag.
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut guard = self.connections.lock().unwrap();
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        ServerStats::gather(&self.shared)
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("redistd-conn".into())
                    .spawn(move || connection_loop(&shared, stream))
                    .expect("spawn connection thread");
                connections.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        match wire::read_incoming(&mut stream) {
            Ok(Incoming::Eof) => return,
            Ok(Incoming::Stats) => {
                let stats = ServerStats::gather(shared);
                let _ = stream.write_all(stats.render(shared.started.elapsed()).as_bytes());
                return; // stats connections are one-shot
            }
            Ok(Incoming::Frame(payload)) => {
                let resp = handle_frame(shared, &payload);
                if wire::write_all(&mut stream, &wire::encode_response(&resp)).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle between requests: poll the shutdown flag.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Decodes, admits and executes one request, blocking until its response
/// is ready (or producing a rejection immediately).
fn handle_frame(shared: &Arc<Shared>, payload: &[u8]) -> PlanResponse {
    let start = Instant::now();
    let req = match wire::decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            return PlanResponse::Error {
                request_id: peek_request_id(payload),
                message: e.0,
            };
        }
    };
    let request_id = req.request_id;

    // Admission control, cheapest check first. Rejections answer
    // immediately — the whole point is never to buffer beyond the bound.
    if req.matrix.cells() > shared.config.max_cells {
        counters::incr(Counter::ServeRejected);
        shared.rejected_too_large.fetch_add(1, Ordering::Relaxed);
        return PlanResponse::Rejected {
            request_id,
            reason: RejectReason::MatrixTooLarge,
        };
    }

    let (tx, rx) = mpsc::channel();
    match shared.queue.try_push(Job { req, reply: tx }) {
        Err(PushError::Full(_)) | Err(PushError::Closed(_)) => {
            counters::incr(Counter::ServeRejected);
            shared.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            PlanResponse::Rejected {
                request_id,
                reason: RejectReason::QueueFull,
            }
        }
        Ok(()) => {
            // The worker pool drains every accepted job (even through
            // shutdown), so this recv only fails if a worker panicked.
            let resp = rx.recv().unwrap_or_else(|_| PlanResponse::Error {
                request_id,
                message: "worker failed".into(),
            });
            if matches!(resp, PlanResponse::Ok { .. }) {
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared
                    .service_us
                    .record(start.elapsed().as_micros().min(u64::MAX as u128) as u64);
            } else {
                shared.errors.fetch_add(1, Ordering::Relaxed);
            }
            resp
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if shared.config.worker_think_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.worker_think_ms));
        }
        let resp = plan_request(shared, &job.req);
        // A closed reply channel means the connection died; the plan is
        // still cached, so the work is not wasted.
        let _ = job.reply.send(resp);
    }
}

/// Plans one admitted request: canonical instance, cache lookup, cold plan
/// on a miss. Pure per request — the response does not depend on which
/// worker ran it.
fn plan_request(shared: &Arc<Shared>, req: &PlanRequest) -> PlanResponse {
    let _span = telemetry::span("redistd.plan");
    counters::incr(Counter::ServeRequests);
    let platform = Platform::new(
        req.platform.n1 as usize,
        req.platform.n2 as usize,
        req.platform.t1,
        req.platform.t2,
        req.platform.backbone,
    );
    let traffic = req.matrix.to_traffic();
    let (inst, _endpoints) =
        traffic.to_instance(&platform, req.platform.beta_seconds, TickScale::MILLIS);
    let key = kpbs::cache_key(&inst, req.algo as u64);

    if let Some(hit) = shared.cache.get(key) {
        counters::incr(Counter::ServeCacheHits);
        return PlanResponse::Ok {
            request_id: req.request_id,
            cached: true,
            schedule: hit.schedule.clone(),
            cost: hit.cost,
            lower_bound: hit.lower_bound,
            // A hit does no planning work; the delta is genuinely zero.
            work: [0; COUNTER_COUNT],
        };
    }

    let before = counters::local_snapshot();
    let schedule = match req.algo {
        Algo::Oggp => kpbs::oggp(&inst),
        Algo::Ggp => kpbs::ggp(&inst),
    };
    let delta = counters::local_snapshot().delta(&before);
    let mut work = [0u64; COUNTER_COUNT];
    for (i, (_, v)) in delta.iter().enumerate() {
        work[i] = v;
    }
    let outcome = Arc::new(PlanOutcome {
        cost: schedule.cost(),
        lower_bound: kpbs::lower_bound(&inst),
        schedule,
    });
    shared.cache.insert(key, outcome.clone());
    PlanResponse::Ok {
        request_id: req.request_id,
        cached: false,
        schedule: outcome.schedule.clone(),
        cost: outcome.cost,
        lower_bound: outcome.lower_bound,
        work,
    }
}

/// Best-effort extraction of the request id from a frame that failed to
/// decode (offset 7..15 after magic + version + kind), so even an error
/// response can be correlated by the client.
fn peek_request_id(payload: &[u8]) -> u64 {
    if payload.len() >= 15 && payload[..4] == wire::MAGIC {
        u64::from_be_bytes(payload[7..15].try_into().unwrap())
    } else {
        0
    }
}
