//! The serving core: socket front-end, bounded request queue, worker
//! pool, plan cache, statistics, graceful shutdown.
//!
//! ```text
//!                        ┌────────────────────────────┐
//!   TCP clients ──────▶  │ socket front-end           │
//!                        │  event core: epoll I/O     │
//!                        │  threads (default, Linux)  │
//!                        │  thread core: one thread   │
//!                        │  per connection (baseline) │
//!                        └──────────┬─────────────────┘
//!                                   │ decode + admission
//!                                   │ reject: queue_full / matrix_too_large
//!                                   │ try_push (never blocks)
//!                        ┌──────────▼─────────────┐
//!                        │ BoundedQueue<Job>      │  ← backpressure boundary
//!                        └──────────┬─────────────┘
//!                                   │ pop
//!                        ┌──────────▼─────────────┐   ┌────────────────┐
//!                        │ worker pool (N threads)│ ⇄ │ sharded cache  │
//!                        │ fingerprint → plan     │   │ lock-free gets │
//!                        └──────────┬─────────────┘   └────────────────┘
//!                                   │ Reply: mpsc (thread core) or
//!                                   │ Inbox + eventfd (event core)
//!                        front-end writes the response frame
//! ```
//!
//! Two serving cores share this admission/worker machinery (selected by
//! [`ServingCore`]): the **event core** (`event.rs`) multiplexes every
//! socket over a few `epoll` threads and is the default on Linux; the
//! **thread core** keeps one blocking thread per connection and survives
//! as the portable fallback and as the measurable baseline the serving
//! benchmarks compare against (the same role the reference planner plays
//! for the optimized one).
//!
//! The design reuses the discipline of [`kpbs::batch`]: work is handed to a
//! fixed pool through one queue, each request's work counters are measured
//! with thread-local snapshots on the worker that planned it, and planning
//! is a pure function of the request — so a response is byte-identical no
//! matter which worker produced it, whether the cache was warm, and which
//! serving core carried the bytes.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is drain-based: stop accepting,
//! close the queue (pushes fail, pops drain), join workers (every accepted
//! request gets its response), then join the front-end threads.

use crate::cache::{CacheStats, ShardedLru};
#[cfg(target_os = "linux")]
use crate::event;
use crate::queue::{BoundedQueue, PushError};
use crate::session::{DeltaError, Session, SessionTable};
use crate::wire::{
    self, Algo, Incoming, PlanRequest, PlanResponse, RejectReason, Request, SessionLevel,
    SessionOp, SessionRejectReason, SessionRequest,
};
use kpbs::traffic::TickScale;
use kpbs::{DeltaPlanner, Platform, RepairLevel, Schedule};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::counters::{self, Counter, COUNTER_COUNT};
use telemetry::flight::{FlightOutcome, FlightRecord, FlightRecorder};
use telemetry::metrics::{CounterHandle, GaugeHandle, Registry, RegistryConfig, SummaryHandle};

/// How long a blocked read waits before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Which front-end carries bytes between sockets and the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServingCore {
    /// Readiness-driven I/O threads over `epoll` (Linux). The default;
    /// transparently falls back to [`ServingCore::Threads`] elsewhere.
    #[default]
    EventLoop,
    /// One blocking thread per connection — portable fallback and the
    /// serving-scale baseline.
    Threads,
}

impl ServingCore {
    /// The core that will actually run on this platform.
    pub fn resolved(self) -> ServingCore {
        if cfg!(target_os = "linux") {
            self
        } else {
            ServingCore::Threads
        }
    }

    /// Stable label used in `STATS` and benchmark output.
    pub fn label(self) -> &'static str {
        match self.resolved() {
            ServingCore::EventLoop => "event",
            ServingCore::Threads => "threads",
        }
    }
}

impl std::str::FromStr for ServingCore {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(ServingCore::EventLoop),
            "threads" => Ok(ServingCore::Threads),
            other => Err(format!("unknown serving core {other:?} (event|threads)")),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads planning requests.
    pub workers: usize,
    /// Bounded queue depth — requests beyond this are rejected with
    /// `queue_full`, never buffered.
    pub queue_depth: usize,
    /// Total plan-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Plan-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Admission limit: matrices with more than this many cells are
    /// rejected with `matrix_too_large`.
    pub max_cells: u64,
    /// Test hook: artificial per-request think time in the worker, used to
    /// provoke deterministic overload/drain behaviour in tests. 0 in
    /// production.
    pub worker_think_ms: u64,
    /// Flight-recorder capacity: how many per-request records the `FLIGHT`
    /// admin command (and `--flight-dump`) can look back over.
    pub flight_capacity: usize,
    /// Socket front-end (see [`ServingCore`]).
    pub core: ServingCore,
    /// Event-core I/O threads multiplexing the sockets. Requests are
    /// small and planning lives on the worker pool, so a handful goes a
    /// long way; ignored by the thread core.
    pub io_threads: usize,
    /// Event-core backpressure: a connection whose unflushed response
    /// bytes exceed this stops being read until the peer drains.
    pub wbuf_limit: usize,
    /// Event-core backpressure: decoded-but-unprocessed messages buffered
    /// per connection before reads park.
    pub pending_limit: usize,
    /// Concurrent delta-planning sessions admitted; `OPEN` beyond this is
    /// refused with `table_full` (backpressure, like the request queue).
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_depth: 64,
            cache_capacity: 1024,
            cache_shards: 8,
            max_cells: 1 << 20,
            worker_think_ms: 0,
            flight_capacity: 1024,
            core: ServingCore::default(),
            io_threads: 2,
            wbuf_limit: 256 * 1024,
            pending_limit: 64,
            max_sessions: 64,
        }
    }
}

/// A cached (or fresh) planning outcome.
#[derive(Debug, Clone)]
struct PlanOutcome {
    schedule: Schedule,
    cost: u64,
    lower_bound: u64,
}

/// Where a finished response goes, per serving core.
pub(crate) enum Reply {
    /// Thread core: the connection thread blocks on the receiving end.
    Sync(mpsc::Sender<PlanResponse>),
    /// Event core: the worker encodes the response and hands the bytes to
    /// the connection's I/O thread.
    #[cfg(target_os = "linux")]
    Event(event::CompletionSink),
}

/// What admission control decided about one decoded frame.
pub(crate) enum Admission {
    /// Answer now (decode error or rejection), encoded in `version`.
    /// Boxed so the variant stays small next to `Queued`.
    Immediate(Box<PlanResponse>, u16),
    /// Accepted onto the worker queue; the [`Reply`] answers later. The
    /// ids let the thread core build its worker-failure fallback.
    Queued {
        rid: u64,
        request_id: u64,
        version: u16,
    },
}

struct Job {
    req: Request,
    reply: Reply,
    /// Server-minted request id — the correlation key across the response
    /// (`server_id`), spans (`rid` arg), and the flight record.
    rid: u64,
    /// When admission succeeded; worker pickup measures queue wait from it.
    admitted: Instant,
    /// Queue depth observed at admission (this job excluded).
    depth_at_admission: usize,
}

/// The server's registered instruments — the single source of truth for
/// every count `STATS` and `METRICS` report. Names are part of the
/// observable surface (golden-tested); keep them in sync with DESIGN.md §14.
pub(crate) struct ServerMetrics {
    requests_planned: CounterHandle,
    requests_cache_hit: CounterHandle,
    requests_shed_queue_full: CounterHandle,
    requests_shed_too_large: CounterHandle,
    requests_error: CounterHandle,
    admissions_total: CounterHandle,
    request_bytes: CounterHandle,
    /// Accepted sockets (event core; the thread core counts spawns).
    pub(crate) accepts_total: CounterHandle,
    /// Times a connection's read interest was parked because its write
    /// buffer or pending ring hit its limit (event core).
    pub(crate) io_backpressure_total: CounterHandle,
    sessions_opened: CounterHandle,
    session_repairs: CounterHandle,
    session_repeels: CounterHandle,
    session_colds: CounterHandle,
    sessions_committed: CounterHandle,
    sessions_closed: CounterHandle,
    sessions_rejected: CounterHandle,
    service_us: SummaryHandle,
    queue_wait_us: SummaryHandle,
    plan_us: SummaryHandle,
    // Gauges refreshed on every render (see `refresh_gauges`).
    queue_depth: GaugeHandle,
    queue_capacity: GaugeHandle,
    workers: GaugeHandle,
    uptime_seconds: GaugeHandle,
    requests_per_second: GaugeHandle,
    connections_open: GaugeHandle,
    cache_hits: GaugeHandle,
    cache_misses: GaugeHandle,
    cache_insertions: GaugeHandle,
    cache_evictions: GaugeHandle,
    cache_entries: GaugeHandle,
    sessions_open: GaugeHandle,
}

impl ServerMetrics {
    fn register(r: &Registry) -> ServerMetrics {
        let req = |outcome| {
            r.counter(
                "redistd_requests_total",
                "Requests by final outcome.",
                &[("outcome", outcome)],
            )
        };
        let delta = |level| {
            r.counter(
                "redistd_session_deltas_total",
                "Session DELTA frames by repair-ladder level.",
                &[("level", level)],
            )
        };
        ServerMetrics {
            requests_planned: req("planned"),
            requests_cache_hit: req("cache_hit"),
            requests_shed_queue_full: req("shed_queue_full"),
            requests_shed_too_large: req("shed_too_large"),
            requests_error: req("error"),
            admissions_total: r.counter(
                "redistd_admissions_total",
                "Frames that reached admission control (every rid minted).",
                &[],
            ),
            request_bytes: r.counter(
                "redistd_request_bytes_total",
                "Total payload bytes across admitted traffic matrices.",
                &[],
            ),
            accepts_total: r.counter(
                "redistd_accepts_total",
                "Client sockets accepted since start.",
                &[],
            ),
            io_backpressure_total: r.counter(
                "redistd_io_backpressure_total",
                "Connections whose reads were parked by per-connection backpressure.",
                &[],
            ),
            sessions_opened: r.counter(
                "redistd_sessions_opened_total",
                "Delta-planning sessions opened since start.",
                &[],
            ),
            session_repairs: delta("repair"),
            session_repeels: delta("repeel"),
            session_colds: delta("cold"),
            sessions_committed: r.counter(
                "redistd_sessions_committed_total",
                "Session plans published into the shared plan cache.",
                &[],
            ),
            sessions_closed: r.counter(
                "redistd_sessions_closed_total",
                "Sessions closed since start.",
                &[],
            ),
            sessions_rejected: r.counter(
                "redistd_sessions_rejected_total",
                "Session ops refused (table full or unknown session).",
                &[],
            ),
            service_us: r.summary(
                "redistd_service_us",
                "Admission to response-ready, microseconds.",
                &[],
            ),
            queue_wait_us: r.summary(
                "redistd_queue_wait_us",
                "Admission to worker pickup, microseconds.",
                &[],
            ),
            plan_us: r.summary(
                "redistd_plan_us",
                "Planning time on the worker (cache misses), microseconds.",
                &[],
            ),
            queue_depth: r.gauge("redistd_queue_depth", "Requests queued right now.", &[]),
            queue_capacity: r.gauge("redistd_queue_capacity", "Configured queue bound.", &[]),
            workers: r.gauge("redistd_workers", "Configured worker threads.", &[]),
            uptime_seconds: r.gauge("redistd_uptime_seconds", "Seconds since start.", &[]),
            requests_per_second: r.gauge(
                "redistd_requests_per_second",
                "Admission rate over the sliding window.",
                &[],
            ),
            connections_open: r.gauge(
                "redistd_connections_open",
                "Client connections currently open.",
                &[],
            ),
            cache_hits: r.gauge("redistd_cache_hits", "Plan-cache hits since start.", &[]),
            cache_misses: r.gauge(
                "redistd_cache_misses",
                "Plan-cache misses since start.",
                &[],
            ),
            cache_insertions: r.gauge(
                "redistd_cache_insertions",
                "Plan-cache insertions since start.",
                &[],
            ),
            cache_evictions: r.gauge(
                "redistd_cache_evictions",
                "Plan-cache evictions since start.",
                &[],
            ),
            cache_entries: r.gauge("redistd_cache_entries", "Plan-cache entries resident.", &[]),
            sessions_open: r.gauge(
                "redistd_sessions_open",
                "Delta-planning sessions open right now.",
                &[],
            ),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) shutdown: AtomicBool,
    queue: BoundedQueue<Job>,
    cache: ShardedLru<PlanOutcome>,
    started: Instant,
    /// Request-id mint: the next rid is `admissions + 1`, so rid 0 never
    /// occurs and can mean "not correlated" on the wire.
    admissions: AtomicU64,
    /// Client connections currently open, maintained by whichever core
    /// is serving.
    pub(crate) open_connections: AtomicU64,
    registry: Registry,
    pub(crate) metrics: ServerMetrics,
    pub(crate) flight: FlightRecorder,
    sessions: SessionTable,
}

impl Shared {
    fn mint_rid(&self) -> u64 {
        self.admissions.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The plaintext `STATS` report body.
    pub(crate) fn render_stats(&self) -> String {
        ServerStats::gather(self).render(self.started.elapsed())
    }

    /// Refreshes point-in-time gauges, then renders the registry. Called
    /// for both `METRICS` responses and the typed stats snapshot.
    fn refresh_gauges(&self) {
        let cache = self.cache.stats();
        let m = &self.metrics;
        m.queue_depth.set(self.queue.len() as f64);
        m.queue_capacity.set(self.queue.capacity() as f64);
        m.workers.set(self.config.workers as f64);
        m.uptime_seconds.set(self.started.elapsed().as_secs_f64());
        m.requests_per_second.set(m.admissions_total.rate());
        m.connections_open
            .set(self.open_connections.load(Ordering::Relaxed) as f64);
        m.cache_hits.set(cache.hits as f64);
        m.cache_misses.set(cache.misses as f64);
        m.cache_insertions.set(cache.insertions as f64);
        m.cache_evictions.set(cache.evictions as f64);
        m.cache_entries.set(cache.len as f64);
        m.sessions_open.set(self.sessions.len() as f64);
    }

    pub(crate) fn render_metrics(&self) -> String {
        self.registry.tick();
        self.refresh_gauges();
        self.registry.render()
    }
}

/// A point-in-time operational report (the typed form of `STATS`).
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Requests answered `Ok` (cache hits and misses).
    pub served: u64,
    /// Plan-cache statistics.
    pub cache: CacheStats,
    /// Requests rejected because the queue was full (or shutting down).
    pub rejected_queue_full: u64,
    /// Requests rejected because the matrix exceeded `max_cells`.
    pub rejected_too_large: u64,
    /// Malformed requests answered with an error frame.
    pub errors: u64,
    /// Items currently queued.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Configured worker count.
    pub workers: usize,
    /// Service-time p50 in microseconds (admission to response ready).
    pub p50_us: u64,
    /// Service-time p99 in microseconds.
    pub p99_us: u64,
    /// Mean service time in microseconds.
    pub mean_us: u64,
    /// Queue-wait p50 in microseconds (admission to worker pickup).
    pub queue_wait_p50_us: u64,
    /// Queue-wait p99 in microseconds.
    pub queue_wait_p99_us: u64,
    /// Mean queue wait in microseconds.
    pub queue_wait_mean_us: u64,
    /// Which serving core is running (`event` or `threads`).
    pub core: &'static str,
    /// Event-core I/O threads (0 under the thread core).
    pub io_threads: usize,
    /// Client connections open right now.
    pub connections_open: u64,
    /// Delta-planning sessions open right now.
    pub sessions_open: usize,
    /// Sessions opened since start.
    pub sessions_opened: u64,
    /// `DELTA` frames absorbed by in-place repair.
    pub session_repairs: u64,
    /// `DELTA` frames that needed a bounded re-peel.
    pub session_repeels: u64,
    /// `DELTA` frames that fell back to a cold plan.
    pub session_colds: u64,
    /// Session plans published into the shared plan cache.
    pub sessions_committed: u64,
    /// Sessions closed since start.
    pub sessions_closed: u64,
    /// Session ops refused (table full or unknown session).
    pub sessions_rejected: u64,
}

impl ServerStats {
    pub(crate) fn gather(shared: &Shared) -> ServerStats {
        let m = &shared.metrics;
        let mean = |s: &SummaryHandle| s.sum().checked_div(s.count()).unwrap_or(0);
        ServerStats {
            served: m.requests_planned.value() + m.requests_cache_hit.value(),
            cache: shared.cache.stats(),
            rejected_queue_full: m.requests_shed_queue_full.value(),
            rejected_too_large: m.requests_shed_too_large.value(),
            errors: m.requests_error.value(),
            queue_depth: shared.queue.len(),
            queue_capacity: shared.queue.capacity(),
            workers: shared.config.workers,
            p50_us: m.service_us.quantile(0.5),
            p99_us: m.service_us.quantile(0.99),
            mean_us: mean(&m.service_us),
            queue_wait_p50_us: m.queue_wait_us.quantile(0.5),
            queue_wait_p99_us: m.queue_wait_us.quantile(0.99),
            queue_wait_mean_us: mean(&m.queue_wait_us),
            core: shared.config.core.label(),
            io_threads: match shared.config.core.resolved() {
                ServingCore::EventLoop => shared.config.io_threads.max(1),
                ServingCore::Threads => 0,
            },
            connections_open: shared.open_connections.load(Ordering::Relaxed),
            sessions_open: shared.sessions.len(),
            sessions_opened: m.sessions_opened.value(),
            session_repairs: m.session_repairs.value(),
            session_repeels: m.session_repeels.value(),
            session_colds: m.session_colds.value(),
            sessions_committed: m.sessions_committed.value(),
            sessions_closed: m.sessions_closed.value(),
            sessions_rejected: m.sessions_rejected.value(),
        }
    }

    /// The `key: value` pairs of the `STATS` report, in render order. The
    /// order is fixed — append-only across versions — so the plaintext
    /// report is golden-testable and `stats_field` lookups are unambiguous.
    pub fn fields(&self, uptime: Duration) -> Vec<(&'static str, String)> {
        vec![
            ("uptime_s", format!("{:.1}", uptime.as_secs_f64())),
            ("workers", self.workers.to_string()),
            ("queue_depth", self.queue_depth.to_string()),
            ("queue_capacity", self.queue_capacity.to_string()),
            ("served", self.served.to_string()),
            ("cache_hits", self.cache.hits.to_string()),
            ("cache_misses", self.cache.misses.to_string()),
            ("cache_hit_rate", format!("{:.4}", self.cache.hit_rate())),
            ("cache_len", self.cache.len.to_string()),
            ("cache_evictions", self.cache.evictions.to_string()),
            ("rejected_queue_full", self.rejected_queue_full.to_string()),
            ("rejected_too_large", self.rejected_too_large.to_string()),
            ("errors", self.errors.to_string()),
            ("service_us_p50", self.p50_us.to_string()),
            ("service_us_p99", self.p99_us.to_string()),
            ("service_us_mean", self.mean_us.to_string()),
            ("queue_wait_us_p50", self.queue_wait_p50_us.to_string()),
            ("queue_wait_us_p99", self.queue_wait_p99_us.to_string()),
            ("queue_wait_us_mean", self.queue_wait_mean_us.to_string()),
            ("core", self.core.to_string()),
            ("io_threads", self.io_threads.to_string()),
            ("connections_open", self.connections_open.to_string()),
            ("sessions_open", self.sessions_open.to_string()),
            ("sessions_opened", self.sessions_opened.to_string()),
            ("session_repairs", self.session_repairs.to_string()),
            ("session_repeels", self.session_repeels.to_string()),
            ("session_colds", self.session_colds.to_string()),
            ("sessions_committed", self.sessions_committed.to_string()),
            ("sessions_closed", self.sessions_closed.to_string()),
            ("sessions_rejected", self.sessions_rejected.to_string()),
        ]
    }

    /// The plaintext rendering sent in answer to `STATS`: a banner line,
    /// then [`ServerStats::fields`] one per line.
    pub fn render(&self, uptime: Duration) -> String {
        let mut out = String::from("redistd stats\n");
        for (k, v) in self.fields(uptime) {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(&v);
            out.push('\n');
        }
        out
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (the process exiting
/// reaps them); call `shutdown` for a clean drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    core: CoreHandle,
}

/// The core-specific front-end threads behind a [`ServerHandle`].
enum CoreHandle {
    Threads {
        accept: Option<JoinHandle<()>>,
        connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    #[cfg(target_os = "linux")]
    Event(Option<event::IoHandle>),
}

/// Starts a server on `config.addr` and returns its handle once the
/// listener is bound (requests can be sent immediately).
pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = Registry::new(RegistryConfig::default());
    let metrics = ServerMetrics::register(&registry);
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(config.queue_depth),
        cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        admissions: AtomicU64::new(0),
        open_connections: AtomicU64::new(0),
        registry,
        metrics,
        flight: FlightRecorder::new(config.flight_capacity),
        sessions: SessionTable::new(config.max_sessions),
        config,
    });

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("redistd-worker-{i}"))
                .spawn(move || worker_loop(&shared, i as u32))
                .expect("spawn worker")
        })
        .collect();

    let core = match shared.config.core.resolved() {
        #[cfg(target_os = "linux")]
        ServingCore::EventLoop => {
            CoreHandle::Event(Some(event::start_io(shared.clone(), listener)?))
        }
        #[cfg(not(target_os = "linux"))]
        ServingCore::EventLoop => unreachable!("resolved() never picks EventLoop off Linux"),
        ServingCore::Threads => {
            let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
            let accept = {
                let shared = shared.clone();
                let connections = connections.clone();
                std::thread::Builder::new()
                    .name("redistd-accept".into())
                    .spawn(move || accept_loop(&shared, listener, &connections))
                    .expect("spawn accept loop")
            };
            CoreHandle::Threads {
                accept: Some(accept),
                connections,
            }
        }
    };

    Ok(ServerHandle {
        addr,
        shared,
        workers,
        core,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats::gather(&self.shared)
    }

    /// The Prometheus text exposition the `METRICS` admin command serves
    /// (gauges refreshed to now).
    pub fn metrics_text(&self) -> String {
        self.shared.render_metrics()
    }

    /// The flight-recorder dump the `FLIGHT` admin command serves.
    pub fn flight_text(&self) -> String {
        self.shared.flight.render()
    }

    /// Asks the server to shut down without waiting (used by signal
    /// handlers); follow with [`ServerHandle::shutdown`] to drain and join.
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, drain every admitted request to
    /// its response, join all threads. Returns the final statistics.
    pub fn shutdown(self) -> ServerStats {
        self.shutdown_with_flight().0
    }

    /// [`ServerHandle::shutdown`], additionally returning the post-drain
    /// flight-recorder dump — taken *after* workers joined, so it covers
    /// every request the server ever answered (`--flight-dump` uses this).
    pub fn shutdown_with_flight(mut self) -> (ServerStats, String) {
        self.request_shutdown();
        match &mut self.core {
            CoreHandle::Threads { accept, .. } => {
                if let Some(a) = accept.take() {
                    let _ = a.join();
                }
            }
            #[cfg(target_os = "linux")]
            CoreHandle::Event(io) => {
                // Wake the I/O threads so they stop accepting now; they
                // keep serving completions until the drain finishes.
                if let Some(io) = io {
                    io.wake_all();
                }
            }
        }
        // No new work is admitted now; close the queue so workers drain
        // the backlog and exit. Front-ends still waiting on replies get
        // them before they notice the flag.
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Every completion has been delivered; join the front-end.
        match &mut self.core {
            CoreHandle::Threads { connections, .. } => {
                let handles: Vec<JoinHandle<()>> = {
                    let mut guard = connections.lock().unwrap();
                    guard.drain(..).collect()
                };
                for h in handles {
                    let _ = h.join();
                }
            }
            #[cfg(target_os = "linux")]
            CoreHandle::Event(io) => {
                if let Some(io) = io.take() {
                    io.join();
                }
            }
        }
        (
            ServerStats::gather(&self.shared),
            self.shared.flight.render(),
        )
    }
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.accepts_total.inc();
                let shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("redistd-conn".into())
                    .spawn(move || connection_loop(&shared, stream))
                    .expect("spawn connection thread");
                connections.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    shared.open_connections.fetch_add(1, Ordering::Relaxed);
    connection_loop_inner(shared, stream);
    shared.open_connections.fetch_sub(1, Ordering::Relaxed);
}

fn connection_loop_inner(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    loop {
        match wire::read_incoming(&mut stream) {
            Ok(Incoming::Eof) => return,
            Ok(Incoming::Stats) => {
                let _ = stream.write_all(shared.render_stats().as_bytes());
                return; // admin connections are one-shot
            }
            Ok(Incoming::Metrics) => {
                let _ = stream.write_all(shared.render_metrics().as_bytes());
                return;
            }
            Ok(Incoming::Flight) => {
                let _ = stream.write_all(shared.flight.render().as_bytes());
                return;
            }
            Ok(Incoming::Frame(payload)) => {
                let (resp, version) = handle_frame(shared, &payload);
                if wire::write_all(&mut stream, &wire::encode_response(&resp, version)).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle between requests: poll the shutdown flag.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Decodes, admits and executes one request, blocking until its response
/// is ready (or producing a rejection immediately). Returns the response
/// and the wire version to encode it in (the request's own version, so an
/// old client never sees v2 fields). Thread core only; the event core
/// calls [`admit_frame`] and gets the response asynchronously.
fn handle_frame(shared: &Arc<Shared>, payload: &[u8]) -> (PlanResponse, u16) {
    let (tx, rx) = mpsc::channel();
    match admit_frame(shared, payload, move || Reply::Sync(tx)) {
        Admission::Immediate(resp, version) => (*resp, version),
        Admission::Queued {
            rid,
            request_id,
            version,
        } => {
            // The worker pool drains every accepted job (even through
            // shutdown), so this recv only fails if a worker panicked.
            let resp = rx.recv().unwrap_or_else(|_| PlanResponse::Error {
                request_id,
                message: "worker failed".into(),
            });
            if !matches!(resp, PlanResponse::Ok { .. }) {
                // A worker failure after admission; the worker never pushed
                // a flight record, so account for the request here.
                shared.metrics.requests_error.inc();
                let mut rec = FlightRecord::new(rid, FlightOutcome::Error);
                rec.client_id = request_id;
                shared.flight.push(rec);
            }
            (resp, version)
        }
    }
}

/// Decodes and admits one frame — the single admission path both serving
/// cores share. `make_reply` is only invoked if the frame is actually
/// queued, with the core-appropriate [`Reply`] route.
pub(crate) fn admit_frame(
    shared: &Arc<Shared>,
    payload: &[u8],
    make_reply: impl FnOnce() -> Reply,
) -> Admission {
    let start = Instant::now();
    shared.registry.tick();
    let rid = shared.mint_rid();
    shared.metrics.admissions_total.inc();
    let req = match wire::decode_frame(payload) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.requests_error.inc();
            let client_id = peek_request_id(payload);
            let mut rec = FlightRecord::new(rid, FlightOutcome::Error);
            rec.client_id = client_id;
            rec.queue_depth = shared.queue.len() as u32;
            shared.flight.push(rec);
            return Admission::Immediate(
                Box::new(PlanResponse::Error {
                    request_id: client_id,
                    message: e.0,
                }),
                peek_version(payload),
            );
        }
    };
    let request_id = req.request_id();
    let version = req.wire_version();
    let matrix = request_matrix(&req);
    let bytes: u64 = matrix.map_or(0, |m| m.bytes.iter().sum());
    let mut rec = FlightRecord::new(rid, FlightOutcome::Error);
    rec.client_id = request_id;
    rec.bytes = bytes;
    rec.n1 = matrix.map_or(0, |m| m.n1);
    rec.n2 = matrix.map_or(0, |m| m.n2);
    rec.queue_depth = shared.queue.len() as u32;

    // Admission control, cheapest check first. Rejections answer
    // immediately — the whole point is never to buffer beyond the bound.
    // Matrix-bearing frames (stateless plans, session OPENs) are bounded
    // here; session growth re-checks the same limit on the worker.
    if matrix.is_some_and(|m| m.cells() > shared.config.max_cells) {
        counters::incr(Counter::ServeRejected);
        shared.metrics.requests_shed_too_large.inc();
        rec.outcome = FlightOutcome::ShedTooLarge;
        shared.flight.push(rec);
        return Admission::Immediate(
            Box::new(PlanResponse::Rejected {
                request_id,
                reason: RejectReason::MatrixTooLarge,
            }),
            version,
        );
    }

    shared.metrics.request_bytes.add(bytes);
    let job = Job {
        req,
        reply: make_reply(),
        rid,
        admitted: start,
        depth_at_admission: shared.queue.len(),
    };
    match shared.queue.try_push(job) {
        Err(PushError::Full(_)) | Err(PushError::Closed(_)) => {
            counters::incr(Counter::ServeRejected);
            shared.metrics.requests_shed_queue_full.inc();
            rec.outcome = FlightOutcome::ShedQueueFull;
            shared.flight.push(rec);
            Admission::Immediate(
                Box::new(PlanResponse::Rejected {
                    request_id,
                    reason: RejectReason::QueueFull,
                }),
                version,
            )
        }
        Ok(()) => Admission::Queued {
            rid,
            request_id,
            version,
        },
    }
}

fn worker_loop(shared: &Arc<Shared>, worker: u32) {
    while let Some(job) = shared.queue.pop() {
        let queue_wait_us = job.admitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
        shared.metrics.queue_wait_us.observe(queue_wait_us);
        if shared.config.worker_think_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.worker_think_ms));
        }
        let plan_start = Instant::now();
        let resp = match &job.req {
            Request::Plan(req) => plan_request(shared, req, job.rid),
            Request::Session(req) => session_request(shared, req, job.rid),
        };
        let plan_us = plan_start.elapsed().as_micros().min(u64::MAX as u128) as u64;

        // Session successes count as planned work (repairs *are* planning);
        // refusals and errors are neither planned nor cached.
        let outcome = match &resp {
            PlanResponse::Ok { cached: true, .. } => FlightOutcome::CacheHit,
            PlanResponse::Ok { .. } | PlanResponse::Session { .. } => FlightOutcome::Planned,
            _ => FlightOutcome::Error,
        };
        match outcome {
            FlightOutcome::CacheHit => shared.metrics.requests_cache_hit.inc(),
            FlightOutcome::Planned => {
                shared.metrics.requests_planned.inc();
                shared.metrics.plan_us.observe(plan_us);
            }
            // Session refusals are tallied by `sessions_rejected` inside
            // `session_request`; protocol errors by `requests_error`.
            _ => {
                if matches!(resp, PlanResponse::Error { .. }) {
                    shared.metrics.requests_error.inc();
                }
            }
        }
        let mut rec = FlightRecord::new(job.rid, outcome);
        let matrix = request_matrix(&job.req);
        rec.client_id = job.req.request_id();
        rec.bytes = matrix.map_or(0, |m| m.bytes.iter().sum());
        rec.n1 = matrix.map_or(0, |m| m.n1);
        rec.n2 = matrix.map_or(0, |m| m.n2);
        rec.queue_depth = job.depth_at_admission as u32;
        rec.queue_wait_us = queue_wait_us;
        rec.plan_us = if outcome == FlightOutcome::CacheHit {
            0
        } else {
            plan_us
        };
        rec.worker = worker;
        shared.flight.push(rec);

        // Admission to response-ready: the response exists now; what
        // remains is byte shuffling on the front-end.
        shared
            .metrics
            .service_us
            .observe(job.admitted.elapsed().as_micros().min(u64::MAX as u128) as u64);

        // A dead reply route means the connection died; the plan is
        // still cached, so the work is not wasted.
        match job.reply {
            Reply::Sync(tx) => {
                let _ = tx.send(resp);
            }
            #[cfg(target_os = "linux")]
            Reply::Event(sink) => {
                sink.complete(wire::encode_response(&resp, job.req.wire_version()));
            }
        }
    }
}

/// The traffic matrix a frame carries, when it carries one (stateless
/// plans and session `OPEN`s); admission and flight accounting share it.
fn request_matrix(req: &Request) -> Option<&wire::CsrMatrix> {
    match req {
        Request::Plan(p) => Some(&p.matrix),
        Request::Session(s) => match &s.op {
            SessionOp::Open { matrix, .. } => Some(matrix),
            _ => None,
        },
    }
}

/// The work-counter deltas accumulated on this thread since `before`, in
/// the fixed [`telemetry::counters::Counter::ALL`] wire order.
fn work_since(before: &telemetry::counters::Snapshot) -> [u64; COUNTER_COUNT] {
    let delta = counters::local_snapshot().delta(before);
    let mut work = [0u64; COUNTER_COUNT];
    for (i, (_, v)) in delta.iter().enumerate() {
        work[i] = v;
    }
    work
}

/// Plans one admitted request: canonical instance, cache lookup, cold plan
/// on a miss. Pure per request — the response does not depend on which
/// worker ran it. `rid` labels the span timeline and the response's
/// `server_id`, tying both to the flight record.
fn plan_request(shared: &Arc<Shared>, req: &PlanRequest, rid: u64) -> PlanResponse {
    let _span = telemetry::span_with("redistd.plan", &[("rid", rid)]);
    counters::incr(Counter::ServeRequests);
    let platform = Platform::new(
        req.platform.n1 as usize,
        req.platform.n2 as usize,
        req.platform.t1,
        req.platform.t2,
        req.platform.backbone,
    );
    let traffic = req.matrix.to_traffic();
    let (inst, _endpoints) =
        traffic.to_instance(&platform, req.platform.beta_seconds, TickScale::MILLIS);
    let key = kpbs::cache_key(&inst, req.algo as u64);

    if let Some(hit) = shared.cache.get(key) {
        counters::incr(Counter::ServeCacheHits);
        telemetry::instant_with("redistd.cache_hit", &[("rid", rid)]);
        return PlanResponse::Ok {
            request_id: req.request_id,
            cached: true,
            schedule: hit.schedule.clone(),
            cost: hit.cost,
            lower_bound: hit.lower_bound,
            // A hit does no planning work; the delta is genuinely zero.
            work: [0; COUNTER_COUNT],
            server_id: rid,
        };
    }
    telemetry::instant_with("redistd.cache_miss", &[("rid", rid)]);

    let before = counters::local_snapshot();
    let schedule = match req.algo {
        Algo::Oggp => kpbs::oggp(&inst),
        Algo::Ggp => kpbs::ggp(&inst),
    };
    let work = work_since(&before);
    let outcome = Arc::new(PlanOutcome {
        cost: schedule.cost(),
        lower_bound: kpbs::lower_bound(&inst),
        schedule,
    });
    shared.cache.insert(key, outcome.clone());
    PlanResponse::Ok {
        request_id: req.request_id,
        cached: false,
        schedule: outcome.schedule.clone(),
        cost: outcome.cost,
        lower_bound: outcome.lower_bound,
        work,
        server_id: rid,
    }
}

/// Executes one session op on the worker. `OPEN` cold-plans the matrix
/// into a fresh [`DeltaPlanner`] and registers it; `DELTA` converts the
/// byte edits (validated *before* the planner sees them — `replan` panics
/// on malformed indices) and climbs the repair ladder; `COMMIT` publishes
/// the current plan into the shared cache under a generation-scoped key;
/// `CLOSE` frees the slot. Each session serialises its own ops behind its
/// mutex; ops on different sessions run concurrently across workers.
fn session_request(shared: &Arc<Shared>, req: &SessionRequest, rid: u64) -> PlanResponse {
    let _span = telemetry::span_with("redistd.session", &[("rid", rid)]);
    counters::incr(Counter::ServeRequests);
    let request_id = req.request_id;
    let unknown = |session_id: u64| {
        shared.metrics.sessions_rejected.inc();
        PlanResponse::SessionRejected {
            request_id,
            session_id,
            reason: SessionRejectReason::UnknownSession,
        }
    };
    match &req.op {
        SessionOp::Open {
            algo,
            platform,
            matrix,
        } => {
            if *algo != Algo::Oggp {
                return PlanResponse::Error {
                    request_id,
                    message: "sessions require the oggp algorithm (incremental repair reuses its warm matching engine)".into(),
                };
            }
            let p = Platform::new(
                platform.n1 as usize,
                platform.n2 as usize,
                platform.t1,
                platform.t2,
                platform.backbone,
            );
            let traffic = matrix.to_traffic();
            let (inst, _endpoints) =
                traffic.to_instance(&p, platform.beta_seconds, TickScale::MILLIS);
            let before = counters::local_snapshot();
            let planner = DeltaPlanner::new(inst);
            let work = work_since(&before);
            let schedule = planner.schedule().clone();
            let cost = schedule.cost();
            let lower_bound = kpbs::lower_bound(planner.instance());
            let session = Session {
                algo: *algo,
                platform: p,
                scale: TickScale::MILLIS,
                planner,
            };
            match shared.sessions.open(session) {
                Some(session_id) => {
                    shared.metrics.sessions_opened.inc();
                    PlanResponse::Session {
                        request_id,
                        session_id,
                        generation: 0,
                        level: SessionLevel::Opened,
                        schedule,
                        cost,
                        lower_bound,
                        work,
                        server_id: rid,
                    }
                }
                None => {
                    shared.metrics.sessions_rejected.inc();
                    PlanResponse::SessionRejected {
                        request_id,
                        session_id: 0,
                        reason: SessionRejectReason::TableFull,
                    }
                }
            }
        }
        SessionOp::Delta { session_id, deltas } => {
            let Some(sess) = shared.sessions.get(*session_id) else {
                return unknown(*session_id);
            };
            let mut s = sess.lock().unwrap();
            let converted = match s.convert_deltas(deltas, shared.config.max_cells) {
                Ok(v) => v,
                Err(DeltaError::OutOfRange(message)) => {
                    return PlanResponse::Error {
                        request_id,
                        message,
                    }
                }
                Err(DeltaError::TooLarge) => {
                    counters::incr(Counter::ServeRejected);
                    return PlanResponse::Rejected {
                        request_id,
                        reason: RejectReason::MatrixTooLarge,
                    };
                }
            };
            let before = counters::local_snapshot();
            let outcome = s.planner.replan(&converted);
            let work = work_since(&before);
            let level = match outcome.level {
                RepairLevel::Repair => {
                    shared.metrics.session_repairs.inc();
                    SessionLevel::Repair
                }
                RepairLevel::RePeel => {
                    shared.metrics.session_repeels.inc();
                    SessionLevel::RePeel
                }
                RepairLevel::Cold => {
                    shared.metrics.session_colds.inc();
                    SessionLevel::Cold
                }
            };
            PlanResponse::Session {
                request_id,
                session_id: *session_id,
                generation: outcome.generation,
                level,
                schedule: s.planner.schedule().clone(),
                cost: outcome.cost,
                lower_bound: outcome.lower_bound,
                work,
                server_id: rid,
            }
        }
        SessionOp::Commit { session_id } => {
            let Some(sess) = shared.sessions.get(*session_id) else {
                return unknown(*session_id);
            };
            let s = sess.lock().unwrap();
            let schedule = s.planner.schedule().clone();
            let cost = schedule.cost();
            let lower_bound = kpbs::lower_bound(s.planner.instance());
            let key = kpbs::session_cache_key(
                s.planner.instance(),
                s.algo as u64,
                s.planner.generation(),
            );
            shared.cache.insert(
                key,
                Arc::new(PlanOutcome {
                    schedule: schedule.clone(),
                    cost,
                    lower_bound,
                }),
            );
            shared.metrics.sessions_committed.inc();
            PlanResponse::Session {
                request_id,
                session_id: *session_id,
                generation: s.planner.generation(),
                level: SessionLevel::Committed,
                schedule,
                cost,
                lower_bound,
                work: [0; COUNTER_COUNT],
                server_id: rid,
            }
        }
        SessionOp::Close { session_id } => {
            let Some(sess) = shared.sessions.close(*session_id) else {
                return unknown(*session_id);
            };
            shared.metrics.sessions_closed.inc();
            let s = sess.lock().unwrap();
            let schedule = s.planner.schedule().clone();
            let cost = schedule.cost();
            let lower_bound = kpbs::lower_bound(s.planner.instance());
            PlanResponse::Session {
                request_id,
                session_id: *session_id,
                generation: s.planner.generation(),
                level: SessionLevel::Closed,
                schedule,
                cost,
                lower_bound,
                work: [0; COUNTER_COUNT],
                server_id: rid,
            }
        }
    }
}

/// Best-effort extraction of the request id from a frame that failed to
/// decode (offset 7..15 after magic + version + kind), so even an error
/// response can be correlated by the client.
fn peek_request_id(payload: &[u8]) -> u64 {
    if payload.len() >= 15 && payload[..4] == wire::MAGIC {
        u64::from_be_bytes(payload[7..15].try_into().unwrap())
    } else {
        0
    }
}

/// Best-effort extraction of the wire version from a frame that failed to
/// decode, so the error response is encoded in a version the sender can
/// parse. Unreadable or unsupported versions fall back to [`wire::MIN_VERSION`],
/// which every client accepts.
fn peek_version(payload: &[u8]) -> u16 {
    if payload.len() >= 6 && payload[..4] == wire::MAGIC {
        let v = u16::from_be_bytes(payload[4..6].try_into().unwrap());
        if (wire::MIN_VERSION..=wire::VERSION).contains(&v) {
            return v;
        }
    }
    wire::MIN_VERSION
}
