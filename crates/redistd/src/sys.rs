//! Raw `epoll(7)` / `eventfd(2)` shims for the event-loop serving core.
//!
//! The crate is std-only by policy, but libc is already linked by std, so
//! — exactly like the `signal(2)` shim in the `redistd` binary — the
//! handful of symbols the event loop needs are declared directly and
//! wrapped in safe types here. Linux-only (`epoll` is a Linux API); the
//! server falls back to the thread-per-connection core elsewhere.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Peer shut down its writing half. (`EPOLLERR`/`EPOLLHUP` are always
/// reported without being requested; the event loop treats any bit it
/// did not ask for as "go read the socket and observe the error".)
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
#[cfg(test)]
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x8_0000;
const EFD_CLOEXEC: i32 = 0x8_0000;
const EFD_NONBLOCK: i32 = 0x800;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between `events` and `data`); other architectures use natural layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness mask (`EPOLL*` bits).
    pub events: u32,
    /// Caller-owned token returned verbatim with the event.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn listen(sockfd: i32, backlog: i32) -> i32;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance. Closed on drop; fds it watches are deregistered by
/// the kernel automatically when *they* close.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the interest mask (and token) of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters a fd. The event loop never needs this — closing the fd
    /// deregisters it — so it exists only for the tests below.
    #[cfg(test)]
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event even for DEL; every
        // kernel this runs on ignores it.
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`.
        check(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks up to `timeout_ms` (-1 = forever) for readiness, filling
    /// `events` and returning how many fired. `EINTR` is retried.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a valid, writable slice for the call.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                continue;
            }
            return Err(err);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd owned exclusively by this wrapper.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking `eventfd` used to wake an epoll loop from other threads
/// (worker completions, accept handoff, shutdown).
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter 0.
    pub fn new() -> io::Result<WakeFd> {
        // SAFETY: plain syscall, no pointers.
        let fd = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(WakeFd { fd })
    }

    /// The fd to register with [`Epoll::add`] under `EPOLLIN`.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the fd readable, waking any epoll waiting on it. A full
    /// counter (`EAGAIN`) means the loop is already hopelessly behind on
    /// wakeups and still readable, so that error is ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        let buf = one.to_ne_bytes();
        // SAFETY: valid 8-byte buffer for the call.
        unsafe { write(self.fd, buf.as_ptr(), buf.len()) };
    }

    /// Drains the counter so the next `wake` triggers a fresh readiness
    /// edge (and level-triggered polls stop re-firing).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        loop {
            // SAFETY: valid 8-byte buffer for the call.
            let n = unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
            if n >= 0 {
                // eventfd reads atomically reset the counter; one read is
                // enough, but loop defensively until EAGAIN.
                if n == 0 {
                    return;
                }
                continue;
            }
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(EINTR) {
                continue;
            }
            debug_assert!(
                err.raw_os_error() == Some(EAGAIN),
                "eventfd drain failed: {err}"
            );
            return;
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: fd owned exclusively by this wrapper.
        unsafe { close(self.fd) };
    }
}

// SAFETY: the wrapped fds are plain integers; every syscall here is
// thread-safe per POSIX.
unsafe impl Send for WakeFd {}
unsafe impl Sync for WakeFd {}
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

/// Best-effort bump of a listening socket's backlog beyond the
/// `TcpListener::bind` default of 128: `listen(2)` may be re-invoked on a
/// listening socket to resize its queue. At 1024 simultaneous connects a
/// short backlog shows up as refused connections the load generator then
/// has to retry around.
pub fn set_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: plain syscall on a caller-owned fd.
    check(unsafe { listen(fd, backlog) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakefd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.fd(), EPOLLIN, 7).unwrap();

        // Nothing pending: a zero-timeout wait returns no events.
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Wakes from another thread are observed with the right token.
        std::thread::scope(|s| {
            s.spawn(|| wake.wake());
        });
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (ev, data) = (events[0].events, events[0].data);
        assert_ne!(ev & EPOLLIN, 0);
        assert_eq!(data, 7);

        // Level-triggered: still readable until drained.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Coalescing: many wakes, one drain.
        wake.wake();
        wake.wake();
        wake.wake();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_modify_and_delete() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.fd(), EPOLLIN, 1).unwrap();
        wake.wake();
        // Mask out EPOLLIN: no events even though the fd is readable.
        ep.modify(wake.fd(), 0, 1).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        // Re-arm with a new token.
        ep.modify(wake.fd(), EPOLLIN, 2).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);
        let data = events[0].data;
        assert_eq!(data, 2);
        ep.delete(wake.fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
