//! Property-based tests of the matching and colouring substrate, checked
//! against exhaustive brute force on small graphs.

use bipartite::coloring::konig_coloring;
use bipartite::{bottleneck, greedy, hopcroft_karp, properties, EdgeId, Graph, Weight};
use proptest::prelude::*;

/// Strategy: a small bipartite multigraph.
fn graph_strategy(max_side: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(move |(nl, nr)| {
            let edges = proptest::collection::vec((0..nl, 0..nr, 1u64..50), 0..=max_edges);
            (Just((nl, nr)), edges)
        })
        .prop_map(|((nl, nr), edges)| {
            let mut g = Graph::new(nl, nr);
            for (l, r, w) in edges {
                g.add_edge(l, r, w);
            }
            g
        })
}

/// Exhaustive maximum matching size by recursion over edges (exponential;
/// only for tiny graphs).
fn brute_force_max_matching(g: &Graph) -> usize {
    fn rec(edges: &[(usize, usize)], used_l: u64, used_r: u64, from: usize) -> usize {
        let mut best = 0;
        for (i, &(l, r)) in edges.iter().enumerate().skip(from) {
            if used_l & (1 << l) == 0 && used_r & (1 << r) == 0 {
                best = best.max(1 + rec(edges, used_l | (1 << l), used_r | (1 << r), i + 1));
            }
        }
        best
    }
    let edges: Vec<(usize, usize)> = g.edges().map(|(_, l, r, _)| (l, r)).collect();
    rec(&edges, 0, 0, 0)
}

/// Best achievable bottleneck among *maximum-cardinality* matchings, by
/// exhaustive search.
#[allow(clippy::too_many_arguments)]
fn brute_force_best_bottleneck(g: &Graph) -> Option<Weight> {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        edges: &[(EdgeId, usize, usize, Weight)],
        used_l: u64,
        used_r: u64,
        from: usize,
        size: usize,
        min_w: Weight,
        target: usize,
        best: &mut Option<Weight>,
    ) {
        if size == target {
            *best = Some(best.map_or(min_w, |b: Weight| b.max(min_w)));
        }
        for (i, &(_, l, r, w)) in edges.iter().enumerate().skip(from) {
            if used_l & (1 << l) == 0 && used_r & (1 << r) == 0 {
                rec(
                    edges,
                    used_l | (1 << l),
                    used_r | (1 << r),
                    i + 1,
                    size + 1,
                    min_w.min(w),
                    target,
                    best,
                );
            }
        }
    }
    let target = brute_force_max_matching(g);
    if target == 0 {
        return None;
    }
    let edges: Vec<(EdgeId, usize, usize, Weight)> = g.edges().collect();
    let mut best = None;
    rec(&edges, 0, 0, 0, 0, Weight::MAX, target, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn hopcroft_karp_is_maximum(g in graph_strategy(5, 12)) {
        let m = hopcroft_karp::maximum_matching(&g);
        prop_assert!(m.is_valid(&g));
        prop_assert_eq!(m.len(), brute_force_max_matching(&g));
    }

    #[test]
    fn bottleneck_achieves_best_min_weight(g in graph_strategy(5, 10)) {
        let m = bottleneck::max_min_matching(&g);
        prop_assert!(m.is_valid(&g));
        prop_assert_eq!(m.len(), brute_force_max_matching(&g));
        prop_assert_eq!(m.min_weight(&g), brute_force_best_bottleneck(&g));
    }

    #[test]
    fn incremental_bottleneck_agrees(g in graph_strategy(5, 10)) {
        let a = bottleneck::max_min_matching(&g);
        let b = bottleneck::max_min_matching_incremental(&g);
        prop_assert_eq!(a.len(), b.len());
        prop_assert_eq!(a.min_weight(&g), b.min_weight(&g));
    }

    #[test]
    fn greedy_is_maximal_half_of_maximum(g in graph_strategy(6, 15)) {
        let m = greedy::maximal_matching(&g);
        prop_assert!(m.is_valid(&g));
        prop_assert!(m.is_maximal(&g));
        // A maximal matching is at least half a maximum one.
        let max = hopcroft_karp::maximum_matching(&g).len();
        prop_assert!(2 * m.len() >= max);
    }

    #[test]
    fn konig_uses_exactly_delta_colors(g in graph_strategy(7, 20)) {
        let c = konig_coloring(&g);
        prop_assert!(c.is_proper(&g));
        prop_assert_eq!(c.num_colors, properties::max_degree(&g));
    }

    #[test]
    fn peel_preserves_node_weight_budget(g in graph_strategy(6, 15)) {
        // Removing a matching's min weight from its edges reduces P(G) by
        // exactly |M|·w and never breaks node-weight accounting.
        let mut h = g.clone();
        let m = hopcroft_karp::maximum_matching(&h);
        if let Some(w) = m.min_weight(&h) {
            let p_before = properties::total_weight(&h);
            for &e in m.edges() {
                h.decrease_weight(e, w);
            }
            prop_assert_eq!(
                properties::total_weight(&h),
                p_before - w * m.len() as u64
            );
        }
    }
}
