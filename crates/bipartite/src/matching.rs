//! Matching representation and validation.

use crate::graph::{EdgeId, Graph, Weight};

/// A matching: a set of live edges no two of which share an endpoint.
///
/// The scheduler treats each matching as one communication *step* (Section 2
/// of the paper): the 1-port constraint is exactly the matching property.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    edges: Vec<EdgeId>,
}

impl Matching {
    /// An empty matching.
    pub fn new() -> Self {
        Matching { edges: Vec::new() }
    }

    /// Builds a matching from edges, asserting validity in debug builds.
    pub fn from_edges(edges: Vec<EdgeId>) -> Self {
        Matching { edges }
    }

    /// Number of matched edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when no edge is matched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The matched edge ids.
    #[inline]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Consumes the matching, returning its edge ids.
    pub fn into_edges(self) -> Vec<EdgeId> {
        self.edges
    }

    /// Adds an edge (no validity check; see [`Matching::is_valid`]).
    pub fn push(&mut self, e: EdgeId) {
        self.edges.push(e);
    }

    /// The minimum edge weight in the matching, or `None` if empty.
    ///
    /// This is the peel quantum `w` of WRGP and the quantity OGGP maximises.
    pub fn min_weight(&self, g: &Graph) -> Option<Weight> {
        self.edges.iter().map(|&e| g.weight(e)).min()
    }

    /// The maximum edge weight in the matching — `W(M)` in the paper, the
    /// duration of the communication step the matching models.
    pub fn max_weight(&self, g: &Graph) -> Option<Weight> {
        self.edges.iter().map(|&e| g.weight(e)).max()
    }

    /// Checks the matching property against `g`: all edges live, endpoints
    /// pairwise distinct on both sides.
    pub fn is_valid(&self, g: &Graph) -> bool {
        let mut left_used = vec![false; g.left_count()];
        let mut right_used = vec![false; g.right_count()];
        for &e in &self.edges {
            if !g.is_alive(e) {
                return false;
            }
            let (l, r) = (g.left_of(e), g.right_of(e));
            if left_used[l] || right_used[r] {
                return false;
            }
            left_used[l] = true;
            right_used[r] = true;
        }
        true
    }

    /// True when the matching is *perfect* on `g`: valid and covering every
    /// node of both sides (requires `|V1| == |V2|`).
    pub fn is_perfect(&self, g: &Graph) -> bool {
        g.left_count() == g.right_count() && self.edges.len() == g.left_count() && self.is_valid(g)
    }

    /// True when the matching is *maximal*: no live edge of `g` can be added
    /// without breaking the matching property.
    pub fn is_maximal(&self, g: &Graph) -> bool {
        if !self.is_valid(g) {
            return false;
        }
        let mut left_used = vec![false; g.left_count()];
        let mut right_used = vec![false; g.right_count()];
        for &e in &self.edges {
            left_used[g.left_of(e)] = true;
            right_used[g.right_of(e)] = true;
        }
        !g.edge_ids()
            .any(|e| !left_used[g.left_of(e)] && !right_used[g.right_of(e)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Graph, Vec<EdgeId>) {
        // 2x2 complete bipartite graph.
        let mut g = Graph::new(2, 2);
        let es = vec![
            g.add_edge(0, 0, 1),
            g.add_edge(0, 1, 2),
            g.add_edge(1, 0, 3),
            g.add_edge(1, 1, 4),
        ];
        (g, es)
    }

    #[test]
    fn valid_perfect_matching() {
        let (g, es) = diamond();
        let m = Matching::from_edges(vec![es[0], es[3]]);
        assert!(m.is_valid(&g));
        assert!(m.is_perfect(&g));
        assert!(m.is_maximal(&g));
        assert_eq!(m.min_weight(&g), Some(1));
        assert_eq!(m.max_weight(&g), Some(4));
    }

    #[test]
    fn shared_endpoint_invalid() {
        let (g, es) = diamond();
        let m = Matching::from_edges(vec![es[0], es[1]]); // both use left 0
        assert!(!m.is_valid(&g));
    }

    #[test]
    fn dead_edge_invalid() {
        let (mut g, es) = diamond();
        g.remove_edge(es[0]);
        let m = Matching::from_edges(vec![es[0]]);
        assert!(!m.is_valid(&g));
    }

    #[test]
    fn non_maximal_detected() {
        let (g, es) = diamond();
        let m = Matching::from_edges(vec![es[0]]); // could add es[3]
        assert!(m.is_valid(&g));
        assert!(!m.is_maximal(&g));
        assert!(!m.is_perfect(&g));
    }

    #[test]
    fn empty_matching_on_empty_graph_is_maximal() {
        let g = Graph::new(3, 3);
        let m = Matching::new();
        assert!(m.is_valid(&g));
        assert!(m.is_maximal(&g));
        assert_eq!(m.min_weight(&g), None);
    }
}
