//! Hopcroft–Karp maximum-cardinality bipartite matching in `O(m·sqrt(n))`.
//!
//! This is the "perfect matching \[found\] using the Hungarian Method"
//! primitive of the paper's WRGP algorithm (the paper cites Micali–Vazirani
//! \[22\]; on bipartite graphs Hopcroft–Karp attains the same bound). The
//! `_where` variant restricts the graph to edges satisfying a predicate,
//! which the bottleneck matching of OGGP uses for threshold searches.
//!
//! All solvers run over the flat [`CsrAdj`] adjacency and the epoch-stamped
//! [`SearchState`] scratch of [`crate::csr`]: the from-scratch entry points
//! here build the CSR once per call, while [`crate::engine::MatchingEngine`]
//! owns one across a whole peeling run and repairs it incrementally.

use crate::csr::{CsrAdj, SearchState, INF, NIL};
use crate::graph::{EdgeId, Graph};
use crate::matching::Matching;
use telemetry::counters::{self, Counter};

/// Maximum-cardinality matching over all live edges of `g`.
pub fn maximum_matching(g: &Graph) -> Matching {
    maximum_matching_where(g, |_| true)
}

/// Maximum-cardinality matching grown from an initial matching `seed`
/// (whose edges must form a valid matching of `g`): the seed's pairs are
/// kept whenever possible — augmenting paths may re-route them but never
/// shrink the matched set below maximum.
///
/// The WRGP peeling uses this with a heaviest-first greedy seed to bias
/// "any perfect matching" towards heavy edges (see
/// `kpbs::wrgp::GreedySeeded`), which quantifies how sensitive plain GGP is
/// to the unspecified matching choice.
///
/// # Panics
///
/// Panics if `seed` is not a valid matching of `g`.
pub fn maximum_matching_seeded(g: &Graph, seed: &Matching) -> Matching {
    assert!(seed.is_valid(g), "seed must be a valid matching");
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj = CsrAdj::new();
    adj.build(g);
    let mut match_left: Vec<u32> = vec![NIL; nl];
    let mut match_right: Vec<u32> = vec![NIL; nr];
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl];
    for &e in seed.edges() {
        let (l, r) = (g.left_of(e), g.right_of(e));
        match_left[l] = r as u32;
        match_right[r] = l as u32;
        via_left[l] = e;
    }
    let mut search = SearchState::new();
    search.prepare(nl);
    kuhn_to_maximum(
        &adj,
        &mut match_left,
        &mut match_right,
        &mut via_left,
        &mut search,
    );
    gather(&match_left, &via_left)
}

/// The augmentation loop of [`maximum_matching_seeded`]: repeated Kuhn
/// passes over free left nodes, the visited set invalidated (one epoch
/// bump, no O(n) clear) after every successful augmentation, until a full
/// pass finds nothing. Shared with [`crate::engine::MatchingEngine`].
pub(crate) fn kuhn_to_maximum(
    adj: &CsrAdj,
    match_left: &mut [u32],
    match_right: &mut [u32],
    via_left: &mut [EdgeId],
    search: &mut SearchState,
) {
    let nl = match_left.len();
    loop {
        let mut augmented = false;
        search.next_epoch();
        for l in 0..nl {
            if match_left[l] != NIL {
                continue;
            }
            counters::incr(Counter::KuhnAttempts);
            if kuhn_augment(l, adj, match_left, match_right, via_left, search) {
                augmented = true;
                search.next_epoch();
            }
        }
        if !augmented {
            break;
        }
    }
}

pub(crate) fn kuhn_augment(
    l: usize,
    adj: &CsrAdj,
    match_left: &mut [u32],
    match_right: &mut [u32],
    via_left: &mut [EdgeId],
    search: &mut SearchState,
) -> bool {
    if !search.try_visit(l) {
        return false;
    }
    // Edge visits accumulate in a local and flush once per call so the
    // disabled-telemetry cost stays off the per-edge path.
    let mut visits = 0u64;
    for &(r, e) in adj.row(l) {
        visits += 1;
        let next = match_right[r as usize];
        if next == NIL
            || kuhn_augment(
                next as usize,
                adj,
                match_left,
                match_right,
                via_left,
                search,
            )
        {
            match_left[l] = r;
            match_right[r as usize] = l as u32;
            via_left[l] = e;
            counters::add(Counter::DfsEdgeVisits, visits);
            return true;
        }
    }
    counters::add(Counter::DfsEdgeVisits, visits);
    false
}

/// Maximum-cardinality matching over live edges satisfying `keep`.
pub fn maximum_matching_where<F: FnMut(EdgeId) -> bool>(g: &Graph, keep: F) -> Matching {
    // Flatten the filtered adjacency once: (right node, edge id) per left node.
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj = CsrAdj::new();
    adj.build_where(g, keep);
    solve(nl, nr, &adj)
}

/// Like [`maximum_matching_where`], but grown from the edges of `seed` that
/// satisfy `keep`: those pairs are installed as the initial matching and
/// Hopcroft–Karp phases augment from there. The result is still a
/// maximum-cardinality matching of the filtered subgraph, but the work is
/// proportional to the *missing* cardinality. The bottleneck threshold
/// search uses this to carry each feasible probe's matching into the next
/// probe instead of re-deriving it from nothing.
pub fn maximum_matching_where_seeded<F: FnMut(EdgeId) -> bool>(
    g: &Graph,
    mut keep: F,
    seed: &Matching,
) -> Matching {
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj = CsrAdj::new();
    adj.build_where(g, &mut keep);
    let mut match_left: Vec<u32> = vec![NIL; nl];
    let mut match_right: Vec<u32> = vec![NIL; nr];
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl];
    for &e in seed.edges() {
        if !keep(e) {
            continue;
        }
        let (l, r) = (g.left_of(e), g.right_of(e));
        debug_assert!(
            match_left[l] == NIL && match_right[r] == NIL,
            "seed is not a matching"
        );
        match_left[l] = r as u32;
        match_right[r] = l as u32;
        via_left[l] = e;
    }
    let mut search = SearchState::new();
    search.prepare(nl);
    hk_augment_to_maximum(
        &adj,
        &mut match_left,
        &mut match_right,
        &mut via_left,
        &mut search,
    );
    gather(&match_left, &via_left)
}

/// Core solver over a pre-built adjacency structure.
pub(crate) fn solve(nl: usize, nr: usize, adj: &CsrAdj) -> Matching {
    let mut match_left: Vec<u32> = vec![NIL; nl]; // left -> right
    let mut match_right: Vec<u32> = vec![NIL; nr]; // right -> left
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl]; // edge used by match_left
    let mut search = SearchState::new();
    search.prepare(nl);
    hk_augment_to_maximum(
        adj,
        &mut match_left,
        &mut match_right,
        &mut via_left,
        &mut search,
    );
    gather(&match_left, &via_left)
}

/// Runs Hopcroft–Karp phases over `adj` until no augmenting path remains,
/// starting from whatever valid matching the arrays already encode (all-NIL
/// for a from-scratch solve). `search` is scratch; each phase opens a fresh
/// epoch, so no per-phase O(n) `dist` reset happens. This is the shared
/// core of the from-scratch entry points above and of
/// [`crate::engine::MatchingEngine`], which calls it with buffers recycled
/// across WRGP peels.
pub(crate) fn hk_augment_to_maximum(
    adj: &CsrAdj,
    match_left: &mut [u32],
    match_right: &mut [u32],
    via_left: &mut [EdgeId],
    search: &mut SearchState,
) {
    let nl = match_left.len();
    loop {
        counters::incr(Counter::HkPhases);
        // BFS: layer the graph from free left nodes. Unstamped = INF.
        search.next_epoch();
        search.queue.clear();
        for (l, &m) in match_left.iter().enumerate() {
            if m == NIL {
                search.set_dist(l, 0);
                search.queue.push_back(l as u32);
            }
        }
        let mut found_free_right = false;
        while let Some(l) = search.queue.pop_front() {
            let dl = search.dist(l as usize);
            for &(r, _) in adj.row(l as usize) {
                let next = match_right[r as usize];
                if next == NIL {
                    found_free_right = true;
                } else if search.dist(next as usize) == INF {
                    search.set_dist(next as usize, dl + 1);
                    search.queue.push_back(next);
                }
            }
        }
        if !found_free_right {
            break;
        }
        // DFS: vertex-disjoint shortest augmenting paths.
        for l in 0..nl {
            if match_left[l] == NIL {
                augment(l, adj, match_left, match_right, via_left, search);
            }
        }
    }
}

/// Snapshots the matching encoded by the match arrays, in left-node order.
/// Sized up front: one counting pass beats the realloc-and-copy ladder the
/// push loop would otherwise pay once per matching (i.e. once per peel).
pub(crate) fn gather(match_left: &[u32], via_left: &[EdgeId]) -> Matching {
    let matched = match_left.iter().filter(|&&r| r != NIL).count();
    let mut edges = Vec::with_capacity(matched);
    for l in 0..match_left.len() {
        if match_left[l] != NIL {
            edges.push(via_left[l]);
        }
    }
    Matching::from_edges(edges)
}

fn augment(
    l: usize,
    adj: &CsrAdj,
    match_left: &mut [u32],
    match_right: &mut [u32],
    via_left: &mut [EdgeId],
    search: &mut SearchState,
) -> bool {
    let mut visits = 0u64;
    let dl = search.dist(l);
    for &(r, e) in adj.row(l) {
        visits += 1;
        let next = match_right[r as usize];
        let reachable = if next == NIL {
            true
        } else if search.dist(next as usize) == dl + 1 {
            augment(
                next as usize,
                adj,
                match_left,
                match_right,
                via_left,
                search,
            )
        } else {
            false
        };
        if reachable {
            match_left[l] = r;
            match_right[r as usize] = l as u32;
            via_left[l] = e;
            counters::add(Counter::DfsEdgeVisits, visits);
            return true;
        }
    }
    search.set_dist(l, INF);
    counters::add(Counter::DfsEdgeVisits, visits);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_empty_matching() {
        let g = Graph::new(3, 3);
        assert!(maximum_matching(&g).is_empty());
    }

    #[test]
    fn perfect_on_complete_graph() {
        let mut g = Graph::new(4, 4);
        for l in 0..4 {
            for r in 0..4 {
                g.add_edge(l, r, 1);
            }
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 4);
        assert!(m.is_perfect(&g));
    }

    #[test]
    fn respects_structure() {
        // Star: left 0 connected to all rights; only one edge can match.
        let mut g = Graph::new(1, 5);
        for r in 0..5 {
            g.add_edge(0, r, 1);
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 1);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn unbalanced_sides() {
        let mut g = Graph::new(3, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(1, 0, 1);
        g.add_edge(2, 1, 1);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn augmenting_path_needed() {
        // l0-r0, l0-r1, l1-r0: maximum is 2 but greedy l0->r0 would block l1.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 0, 1);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn skips_dead_edges() {
        let mut g = Graph::new(2, 2);
        let e = g.add_edge(0, 0, 1);
        g.add_edge(1, 1, 1);
        g.remove_edge(e);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn filtered_matching() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 10);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 1, 10);
        let m = maximum_matching_where(&g, |e| g.weight(e) >= 5);
        assert_eq!(m.len(), 2);
        assert!(m.edges().iter().all(|&e| g.weight(e) >= 5));
    }

    #[test]
    fn seeded_matching_reaches_maximum() {
        use crate::greedy;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..100 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(1..8);
            let mut g = Graph::new(nl, nr);
            for _ in 0..rng.gen_range(0..20) {
                g.add_edge(
                    rng.gen_range(0..nl),
                    rng.gen_range(0..nr),
                    rng.gen_range(1..50),
                );
            }
            let seed = greedy::maximal_matching_heaviest_first(&g);
            let m = maximum_matching_seeded(&g, &seed);
            assert!(m.is_valid(&g));
            assert_eq!(m.len(), maximum_matching(&g).len());
        }
    }

    #[test]
    fn seeded_matching_keeps_heavy_seed_when_possible() {
        // Seed {heavy, heavy} is already perfect; augmentation keeps it.
        let mut g = Graph::new(2, 2);
        let h0 = g.add_edge(0, 1, 100);
        let h1 = g.add_edge(1, 0, 100);
        g.add_edge(0, 0, 1);
        g.add_edge(1, 1, 1);
        let seed = Matching::from_edges(vec![h0, h1]);
        let m = maximum_matching_seeded(&g, &seed);
        assert_eq!(m.min_weight(&g), Some(100));
    }

    #[test]
    #[should_panic(expected = "valid matching")]
    fn seeded_matching_rejects_bad_seed() {
        let mut g = Graph::new(1, 2);
        let a = g.add_edge(0, 0, 1);
        let b = g.add_edge(0, 1, 1);
        maximum_matching_seeded(&g, &Matching::from_edges(vec![a, b]));
    }

    #[test]
    fn hall_violation_limits_size() {
        // Three left nodes all only adjacent to right 0 and 1.
        let mut g = Graph::new(3, 2);
        for l in 0..3 {
            g.add_edge(l, 0, 1);
            g.add_edge(l, 1, 1);
        }
        assert_eq!(maximum_matching(&g).len(), 2);
    }

    #[test]
    fn long_augmenting_chain() {
        // Path graph requiring cascading augmentation:
        // l_i - r_i and l_i - r_{i-1}; unique perfect matching l_i - r_i.
        let n = 50;
        let mut g = Graph::new(n, n);
        for i in 0..n {
            if i > 0 {
                g.add_edge(i, i - 1, 1);
            }
            g.add_edge(i, i, 1);
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), n);
        assert!(m.is_perfect(&g));
    }

    /// Regression guard for the old `maximum_matching_seeded`, which
    /// re-allocated its `visited` array every outer pass and did a full
    /// O(n) clear after each successful augmentation. Epoch stamps make
    /// both impossible: any full clear of the stamp array shows up as an
    /// `epoch_resets` count, which must stay zero over a whole campaign.
    #[test]
    fn seeded_matching_does_no_full_scratch_clears() {
        use crate::greedy;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        use telemetry::counters::{self, Counter};
        let _g = crate::testutil::COUNTER_LOCK.lock().unwrap();
        counters::enable();
        let before = counters::local_snapshot();
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..50 {
            let nl = rng.gen_range(1..10);
            let nr = rng.gen_range(1..10);
            let mut g = Graph::new(nl, nr);
            for _ in 0..rng.gen_range(0..30) {
                g.add_edge(
                    rng.gen_range(0..nl),
                    rng.gen_range(0..nr),
                    rng.gen_range(1..50),
                );
            }
            let seed = greedy::maximal_matching_heaviest_first(&g);
            std::hint::black_box(maximum_matching_seeded(&g, &seed));
        }
        let delta = counters::local_snapshot().delta(&before);
        counters::disable();
        assert!(delta.get(Counter::KuhnAttempts) > 0, "campaign did work");
        assert_eq!(
            delta.get(Counter::EpochResets),
            0,
            "seeded matching must never full-clear its search scratch"
        );
    }
}
