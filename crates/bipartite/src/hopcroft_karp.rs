//! Hopcroft–Karp maximum-cardinality bipartite matching in `O(m·sqrt(n))`.
//!
//! This is the "perfect matching [found] using the Hungarian Method"
//! primitive of the paper's WRGP algorithm (the paper cites Micali–Vazirani
//! [22]; on bipartite graphs Hopcroft–Karp attains the same bound). The
//! `_where` variant restricts the graph to edges satisfying a predicate,
//! which the bottleneck matching of OGGP uses for threshold searches.

use crate::graph::{EdgeId, Graph};
use crate::matching::Matching;
use std::collections::VecDeque;
use telemetry::counters::{self, Counter};

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Maximum-cardinality matching over all live edges of `g`.
pub fn maximum_matching(g: &Graph) -> Matching {
    maximum_matching_where(g, |_| true)
}

/// Maximum-cardinality matching grown from an initial matching `seed`
/// (whose edges must form a valid matching of `g`): the seed's pairs are
/// kept whenever possible — augmenting paths may re-route them but never
/// shrink the matched set below maximum.
///
/// The WRGP peeling uses this with a heaviest-first greedy seed to bias
/// "any perfect matching" towards heavy edges (see
/// `kpbs::wrgp::GreedySeeded`), which quantifies how sensitive plain GGP is
/// to the unspecified matching choice.
///
/// # Panics
///
/// Panics if `seed` is not a valid matching of `g`.
pub fn maximum_matching_seeded(g: &Graph, seed: &Matching) -> Matching {
    assert!(seed.is_valid(g), "seed must be a valid matching");
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new(); nl];
    for (id, l, r, _) in g.edges() {
        adj[l].push((r as u32, id));
    }
    let mut match_left: Vec<u32> = vec![NIL; nl];
    let mut match_right: Vec<u32> = vec![NIL; nr];
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl];
    for &e in seed.edges() {
        let (l, r) = (g.left_of(e), g.right_of(e));
        match_left[l] = r as u32;
        match_right[r] = l as u32;
        via_left[l] = e;
    }
    // Augment from every free left node (Kuhn) until no path remains.
    loop {
        let mut augmented = false;
        let mut visited = vec![false; nl];
        for l in 0..nl {
            if match_left[l] != NIL {
                continue;
            }
            counters::incr(Counter::KuhnAttempts);
            if kuhn_augment(
                l,
                &adj,
                &mut match_left,
                &mut match_right,
                &mut via_left,
                &mut visited,
            ) {
                augmented = true;
                visited.iter_mut().for_each(|v| *v = false);
            }
        }
        if !augmented {
            break;
        }
    }
    let mut m = Matching::new();
    for l in 0..nl {
        if match_left[l] != NIL {
            m.push(via_left[l]);
        }
    }
    m
}

pub(crate) fn kuhn_augment(
    l: usize,
    adj: &[Vec<(u32, EdgeId)>],
    match_left: &mut [u32],
    match_right: &mut [u32],
    via_left: &mut [EdgeId],
    visited: &mut [bool],
) -> bool {
    if visited[l] {
        return false;
    }
    visited[l] = true;
    // Edge visits accumulate in a local and flush once per call so the
    // disabled-telemetry cost stays off the per-edge path.
    let mut visits = 0u64;
    for &(r, e) in &adj[l] {
        visits += 1;
        let next = match_right[r as usize];
        if next == NIL
            || kuhn_augment(
                next as usize,
                adj,
                match_left,
                match_right,
                via_left,
                visited,
            )
        {
            match_left[l] = r;
            match_right[r as usize] = l as u32;
            via_left[l] = e;
            counters::add(Counter::DfsEdgeVisits, visits);
            return true;
        }
    }
    counters::add(Counter::DfsEdgeVisits, visits);
    false
}

/// Maximum-cardinality matching over live edges satisfying `keep`.
pub fn maximum_matching_where<F: FnMut(EdgeId) -> bool>(g: &Graph, mut keep: F) -> Matching {
    // Flatten the filtered adjacency once: (right node, edge id) per left node.
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new(); nl];
    for (id, l, r, _) in g.edges() {
        if keep(id) {
            adj[l].push((r as u32, id));
        }
    }
    solve(nl, nr, &adj)
}

/// Like [`maximum_matching_where`], but grown from the edges of `seed` that
/// satisfy `keep`: those pairs are installed as the initial matching and
/// Hopcroft–Karp phases augment from there. The result is still a
/// maximum-cardinality matching of the filtered subgraph, but the work is
/// proportional to the *missing* cardinality. The bottleneck threshold
/// search uses this to carry each feasible probe's matching into the next
/// probe instead of re-deriving it from nothing.
pub fn maximum_matching_where_seeded<F: FnMut(EdgeId) -> bool>(
    g: &Graph,
    mut keep: F,
    seed: &Matching,
) -> Matching {
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj: Vec<Vec<(u32, EdgeId)>> = vec![Vec::new(); nl];
    for (id, l, r, _) in g.edges() {
        if keep(id) {
            adj[l].push((r as u32, id));
        }
    }
    let mut match_left: Vec<u32> = vec![NIL; nl];
    let mut match_right: Vec<u32> = vec![NIL; nr];
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl];
    for &e in seed.edges() {
        if !keep(e) {
            continue;
        }
        let (l, r) = (g.left_of(e), g.right_of(e));
        debug_assert!(
            match_left[l] == NIL && match_right[r] == NIL,
            "seed is not a matching"
        );
        match_left[l] = r as u32;
        match_right[r] = l as u32;
        via_left[l] = e;
    }
    let mut dist: Vec<u32> = vec![0; nl];
    let mut queue = VecDeque::with_capacity(nl);
    hk_augment_to_maximum(
        &adj,
        &mut match_left,
        &mut match_right,
        &mut via_left,
        &mut dist,
        &mut queue,
    );
    gather(&match_left, &via_left)
}

/// Core solver over a pre-built adjacency structure.
pub(crate) fn solve(nl: usize, nr: usize, adj: &[Vec<(u32, EdgeId)>]) -> Matching {
    let mut match_left: Vec<u32> = vec![NIL; nl]; // left -> right
    let mut match_right: Vec<u32> = vec![NIL; nr]; // right -> left
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl]; // edge used by match_left
    let mut dist: Vec<u32> = vec![0; nl];
    let mut queue = VecDeque::with_capacity(nl);
    hk_augment_to_maximum(
        adj,
        &mut match_left,
        &mut match_right,
        &mut via_left,
        &mut dist,
        &mut queue,
    );
    gather(&match_left, &via_left)
}

/// Runs Hopcroft–Karp phases over `adj` until no augmenting path remains,
/// starting from whatever valid matching the arrays already encode (all-NIL
/// for a from-scratch solve). `dist` and `queue` are scratch; their contents
/// on entry are irrelevant. This is the shared core of the from-scratch
/// entry points above and of [`crate::engine::MatchingEngine`], which calls
/// it with buffers recycled across WRGP peels.
pub(crate) fn hk_augment_to_maximum(
    adj: &[Vec<(u32, EdgeId)>],
    match_left: &mut [u32],
    match_right: &mut [u32],
    via_left: &mut [EdgeId],
    dist: &mut [u32],
    queue: &mut VecDeque<u32>,
) {
    let nl = match_left.len();
    loop {
        counters::incr(Counter::HkPhases);
        // BFS: layer the graph from free left nodes.
        queue.clear();
        for l in 0..nl {
            if match_left[l] == NIL {
                dist[l] = 0;
                queue.push_back(l as u32);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_free_right = false;
        while let Some(l) = queue.pop_front() {
            for &(r, _) in &adj[l as usize] {
                let next = match_right[r as usize];
                if next == NIL {
                    found_free_right = true;
                } else if dist[next as usize] == INF {
                    dist[next as usize] = dist[l as usize] + 1;
                    queue.push_back(next);
                }
            }
        }
        if !found_free_right {
            break;
        }
        // DFS: vertex-disjoint shortest augmenting paths.
        for l in 0..nl {
            if match_left[l] == NIL {
                augment(l, adj, match_left, match_right, via_left, dist);
            }
        }
    }
}

/// Snapshots the matching encoded by the match arrays, in left-node order.
pub(crate) fn gather(match_left: &[u32], via_left: &[EdgeId]) -> Matching {
    let mut m = Matching::new();
    for l in 0..match_left.len() {
        if match_left[l] != NIL {
            m.push(via_left[l]);
        }
    }
    m
}

fn augment(
    l: usize,
    adj: &[Vec<(u32, EdgeId)>],
    match_left: &mut [u32],
    match_right: &mut [u32],
    via_left: &mut [EdgeId],
    dist: &mut [u32],
) -> bool {
    let mut visits = 0u64;
    for &(r, e) in &adj[l] {
        visits += 1;
        let next = match_right[r as usize];
        let reachable = if next == NIL {
            true
        } else if dist[next as usize] == dist[l] + 1 {
            augment(next as usize, adj, match_left, match_right, via_left, dist)
        } else {
            false
        };
        if reachable {
            match_left[l] = r;
            match_right[r as usize] = l as u32;
            via_left[l] = e;
            counters::add(Counter::DfsEdgeVisits, visits);
            return true;
        }
    }
    dist[l] = INF;
    counters::add(Counter::DfsEdgeVisits, visits);
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_empty_matching() {
        let g = Graph::new(3, 3);
        assert!(maximum_matching(&g).is_empty());
    }

    #[test]
    fn perfect_on_complete_graph() {
        let mut g = Graph::new(4, 4);
        for l in 0..4 {
            for r in 0..4 {
                g.add_edge(l, r, 1);
            }
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 4);
        assert!(m.is_perfect(&g));
    }

    #[test]
    fn respects_structure() {
        // Star: left 0 connected to all rights; only one edge can match.
        let mut g = Graph::new(1, 5);
        for r in 0..5 {
            g.add_edge(0, r, 1);
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 1);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn unbalanced_sides() {
        let mut g = Graph::new(3, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(1, 0, 1);
        g.add_edge(2, 1, 1);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 2);
        assert!(m.is_valid(&g));
    }

    #[test]
    fn augmenting_path_needed() {
        // l0-r0, l0-r1, l1-r0: maximum is 2 but greedy l0->r0 would block l1.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 0, 1);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn skips_dead_edges() {
        let mut g = Graph::new(2, 2);
        let e = g.add_edge(0, 0, 1);
        g.add_edge(1, 1, 1);
        g.remove_edge(e);
        let m = maximum_matching(&g);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn filtered_matching() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 10);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 1, 10);
        let m = maximum_matching_where(&g, |e| g.weight(e) >= 5);
        assert_eq!(m.len(), 2);
        assert!(m.edges().iter().all(|&e| g.weight(e) >= 5));
    }

    #[test]
    fn seeded_matching_reaches_maximum() {
        use crate::greedy;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..100 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(1..8);
            let mut g = Graph::new(nl, nr);
            for _ in 0..rng.gen_range(0..20) {
                g.add_edge(
                    rng.gen_range(0..nl),
                    rng.gen_range(0..nr),
                    rng.gen_range(1..50),
                );
            }
            let seed = greedy::maximal_matching_heaviest_first(&g);
            let m = maximum_matching_seeded(&g, &seed);
            assert!(m.is_valid(&g));
            assert_eq!(m.len(), maximum_matching(&g).len());
        }
    }

    #[test]
    fn seeded_matching_keeps_heavy_seed_when_possible() {
        // Seed {heavy, heavy} is already perfect; augmentation keeps it.
        let mut g = Graph::new(2, 2);
        let h0 = g.add_edge(0, 1, 100);
        let h1 = g.add_edge(1, 0, 100);
        g.add_edge(0, 0, 1);
        g.add_edge(1, 1, 1);
        let seed = Matching::from_edges(vec![h0, h1]);
        let m = maximum_matching_seeded(&g, &seed);
        assert_eq!(m.min_weight(&g), Some(100));
    }

    #[test]
    #[should_panic(expected = "valid matching")]
    fn seeded_matching_rejects_bad_seed() {
        let mut g = Graph::new(1, 2);
        let a = g.add_edge(0, 0, 1);
        let b = g.add_edge(0, 1, 1);
        maximum_matching_seeded(&g, &Matching::from_edges(vec![a, b]));
    }

    #[test]
    fn hall_violation_limits_size() {
        // Three left nodes all only adjacent to right 0 and 1.
        let mut g = Graph::new(3, 2);
        for l in 0..3 {
            g.add_edge(l, 0, 1);
            g.add_edge(l, 1, 1);
        }
        assert_eq!(maximum_matching(&g).len(), 2);
    }

    #[test]
    fn long_augmenting_chain() {
        // Path graph requiring cascading augmentation:
        // l_i - r_i and l_i - r_{i-1}; unique perfect matching l_i - r_i.
        let n = 50;
        let mut g = Graph::new(n, n);
        for i in 0..n {
            if i > 0 {
                g.add_edge(i, i - 1, 1);
            }
            g.add_edge(i, i, 1);
        }
        let m = maximum_matching(&g);
        assert_eq!(m.len(), n);
        assert!(m.is_perfect(&g));
    }
}
