//! Seeded random bipartite graph generators.
//!
//! These reproduce the workload of the paper's simulation campaigns
//! (Section 5.1): "graphs generated with a random number of nodes (up to 40)
//! and a random number of edges (up to 400)", with edge weights uniform in a
//! configurable range.

use crate::graph::{Graph, Weight};
use rand::Rng;

/// Parameters for [`random_graph`].
#[derive(Debug, Clone)]
pub struct GraphParams {
    /// Maximum number of nodes per side (each side size is drawn uniformly
    /// from `1..=max_nodes_per_side`). The paper's "up to 40 nodes" total
    /// corresponds to 20 per side.
    pub max_nodes_per_side: usize,
    /// Maximum number of edges (the drawn count is clamped to the number of
    /// available distinct pairs).
    pub max_edges: usize,
    /// Inclusive edge-weight range.
    pub weight_range: (Weight, Weight),
}

impl Default for GraphParams {
    /// The paper's Figure 7 settings: ≤40 nodes, ≤400 edges, weights 1..=20.
    fn default() -> Self {
        GraphParams {
            max_nodes_per_side: 20,
            max_edges: 400,
            weight_range: (1, 20),
        }
    }
}

impl GraphParams {
    /// Figure 8 settings: weights drawn from 1..=10000.
    pub fn large_weights() -> Self {
        GraphParams {
            weight_range: (1, 10_000),
            ..Default::default()
        }
    }
}

/// Draws a random bipartite graph: side sizes uniform in
/// `1..=max_nodes_per_side`, edge count uniform in `1..=max_edges` (clamped
/// to `n1·n2`), distinct endpoint pairs, weights uniform in `weight_range`.
pub fn random_graph<R: Rng + ?Sized>(rng: &mut R, p: &GraphParams) -> Graph {
    assert!(p.max_nodes_per_side >= 1);
    assert!(p.weight_range.0 >= 1 && p.weight_range.0 <= p.weight_range.1);
    let n1 = rng.gen_range(1..=p.max_nodes_per_side);
    let n2 = rng.gen_range(1..=p.max_nodes_per_side);
    let max_pairs = n1 * n2;
    let m = rng.gen_range(1..=p.max_edges.max(1)).min(max_pairs);
    let mut g = Graph::new(n1, n2);
    // Sample m distinct pairs by partial Fisher–Yates over pair indices.
    let mut pairs: Vec<usize> = (0..max_pairs).collect();
    for i in 0..m {
        let j = rng.gen_range(i..max_pairs);
        pairs.swap(i, j);
        let (l, r) = (pairs[i] / n2, pairs[i] % n2);
        let w = rng.gen_range(p.weight_range.0..=p.weight_range.1);
        g.add_edge(l, r, w);
    }
    g
}

/// Draws a complete bipartite graph `n1 × n2` with weights uniform in
/// `weight_range` — the all-to-all redistribution pattern of the paper's
/// real-world experiments (Section 5.2).
pub fn complete_graph<R: Rng + ?Sized>(
    rng: &mut R,
    n1: usize,
    n2: usize,
    weight_range: (Weight, Weight),
) -> Graph {
    let mut g = Graph::new(n1, n2);
    for l in 0..n1 {
        for r in 0..n2 {
            g.add_edge(l, r, rng.gen_range(weight_range.0..=weight_range.1));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use rand::{rngs::SmallRng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn random_graph_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = GraphParams::default();
        for _ in 0..100 {
            let g = random_graph(&mut rng, &p);
            assert!(g.left_count() >= 1 && g.left_count() <= 20);
            assert!(g.right_count() >= 1 && g.right_count() <= 20);
            assert!(g.edge_count() >= 1);
            assert!(g.edge_count() <= 400);
            assert!(g.edge_count() <= g.left_count() * g.right_count());
            for (_, _, _, w) in g.edges() {
                assert!((1..=20).contains(&w));
            }
        }
    }

    #[test]
    fn random_graph_distinct_pairs() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let g = random_graph(&mut rng, &GraphParams::default());
            let mut seen = HashSet::new();
            for (_, l, r, _) in g.edges() {
                assert!(seen.insert((l, r)), "duplicate pair ({l},{r})");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = GraphParams::default();
        let a = random_graph(&mut SmallRng::seed_from_u64(123), &p);
        let b = random_graph(&mut SmallRng::seed_from_u64(123), &p);
        assert_eq!(a.left_count(), b.left_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let wa: Vec<_> = a.edges().collect();
        let wb: Vec<_> = b.edges().collect();
        assert_eq!(wa, wb);
    }

    #[test]
    fn large_weight_params() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = random_graph(&mut rng, &GraphParams::large_weights());
        for (_, _, _, w) in g.edges() {
            assert!((1..=10_000).contains(&w));
        }
    }

    #[test]
    fn complete_graph_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = complete_graph(&mut rng, 10, 10, (10, 100));
        assert_eq!(g.edge_count(), 100);
        assert_eq!(properties::max_degree(&g), 10);
    }
}
