//! Incremental peeling engine: matching state and scratch buffers reused
//! across the peels of one WRGP run.
//!
//! Every from-scratch matching routine in this crate builds its CSR
//! adjacency and match/search scratch per call; the WRGP loop of `kpbs`
//! calls one of them once per peel, and a peel changes the graph only
//! slightly (a uniform quantum subtracted from one matching, a few edges
//! dying). [`MatchingEngine`] exploits that:
//!
//! * **One adjacency per run** — the flat [`CsrAdj`] is built once in
//!   [`begin`](MatchingEngine::begin) (exactly one `adj_rebuilds` count)
//!   and repaired in place as peels kill edges: an order-preserving
//!   in-row removal per dead edge instead of an O(n + m) rebuild per peel.
//!   The probe adjacency for threshold sweeps shares the same row layout
//!   and is refilled by O(1) pushes.
//! * **Epoch-stamped search scratch** — visited marks and BFS layers live
//!   in one [`SearchState`]; invalidating them between searches is an O(1)
//!   epoch bump, so a peel does zero allocation and zero full-array clears
//!   (`epoch_resets` stays at zero short of a 32-bit wrap).
//! * **Matching reuse** — the previous peel's matching, minus its dead
//!   edges, seeds the next peel's augmentation
//!   ([`MatchingEngine::any_perfect_matching`]), so each peel only repairs
//!   the few pairs it lost instead of rebuilding all of them.
//! * **Warm threshold search** — for bottleneck (max–min) matchings the
//!   previous peel's achieved bottleneck is an upper bound on the next
//!   one (see below), so the descending threshold sweep starts there and
//!   each probe augments the previous probe's matching
//!   ([`MatchingEngine::max_min_matching`]).
//! * **Order maintenance** — the heaviest-first edge order is kept
//!   incrementally, in the cheapest shape the mode in use admits. The
//!   greedy-seeded mode needs *all* live edges sorted, so it keeps one
//!   sorted array and splices the `k` peeled entries (k = one matching,
//!   `<=` the side size) out and back in at their post-quantum positions:
//!   O(k log m) binary searches plus contiguous segment moves. The
//!   max–min mode only ever *consumes* edges heaviest-first down to the
//!   achieved bottleneck, so it keeps just the edges of weight `>=` the
//!   last bottleneck as a small sorted prefix and everything below in a
//!   max-heap pool that pops in the same (weight desc, id asc) order.
//!   Peeled edges always sit in the prefix (their weight is at least the
//!   achieved bottleneck), so a peel repairs the short prefix in place
//!   and demotes what fell below the bound with O(log m) heap pushes —
//!   where a single sorted array would memmove nearly its whole bulk
//!   every peel, because the heavy peeled edges re-insert far below
//!   their old slots.
//!
//! # Seeded-augmentation invariant
//!
//! After [`MatchingEngine::observe_peel`] the engine's carried matching is
//! exactly the previous returned matching restricted to edges still alive —
//! a valid matching of the residual graph. Augmenting it to maximality
//! (Berge) yields a maximum matching, so
//! [`MatchingEngine::any_perfect_matching`] is equivalent, peel for peel,
//! to `hopcroft_karp::maximum_matching_seeded(g, survivors)` computed from
//! scratch — the differential tests in `kpbs` assert exactly that. The
//! repaired adjacency keeps the ascending-edge-id row order a rebuild
//! would produce, so traversal orders (and thus the returned matchings and
//! every work counter) are byte-identical to the rebuild-per-peel engine.
//!
//! # Warm bound for the bottleneck search
//!
//! Let `t*` be the max–min threshold of the graph before a peel and let the
//! peel subtract quantum `q > 0` from each edge of one maximum-cardinality
//! matching. As long as the maximum cardinality is unchanged (in WRGP it is
//! always the side size), every maximum-cardinality matching `M` of the
//! residual graph is also one of the pre-peel graph, and its pre-peel
//! minimum is no smaller, so `min_new(M) <= min_old(M) <= t*`: the new
//! threshold never exceeds the old one. The sweep therefore batch-inserts
//! all edges of weight `>= t*_old` at once and only then descends one
//! distinct weight at a time. When the cardinality did change (possible on
//! irregular inputs), the engine falls back to the full descending sweep.
//!
//! The matching *returned* by [`MatchingEngine::max_min_matching`] is
//! computed by the same deterministic filtered solve the from-scratch
//! [`crate::bottleneck::max_min_matching`] ends with, so the two agree
//! edge-for-edge, not just on the achieved bottleneck.

use crate::csr::{CsrAdj, SearchState, NIL};
use crate::graph::{EdgeId, Graph, Weight};
use crate::hopcroft_karp::{gather, hk_augment_to_maximum, kuhn_augment, kuhn_to_maximum};
use crate::matching::Matching;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use telemetry::counters::{self, Counter};

/// Which live-edge order representation the engine currently maintains.
/// Switching modes mid-run rebuilds the needed one lazily from the graph
/// (`ensure_*`); a steady single-mode run pays the build at most once.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum OrderRepr {
    /// No order maintained: a fresh run, or only
    /// [`MatchingEngine::any_perfect_matching`] used — it needs none.
    #[default]
    Stale,
    /// `order` holds every live edge, sorted (greedy-seeded mode).
    Full,
    /// `prefix`/`pool` split at `last_bottleneck` (max–min mode).
    Split,
}

/// One edge of the max–min mode's sorted prefix. The endpoints are cached
/// so the hot loops that walk the prefix every peel — the canonical greedy
/// seed, the threshold descent's insertions and the peel repair — never
/// chase the edge id back into the graph's edge table (a random access per
/// entry); endpoints never change for a live edge, only `w` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrefixEntry {
    id: EdgeId,
    w: Weight,
    l: u32,
    r: u32,
}

/// Reusable matching engine for the WRGP peeling loop. See the module
/// documentation for the invariants it maintains between peels.
///
/// Protocol: call [`begin`](MatchingEngine::begin) once per peeling run,
/// then alternate one matching method with one
/// [`observe_peel`](MatchingEngine::observe_peel) after the caller has
/// subtracted the quantum from the graph.
#[derive(Debug, Default)]
pub struct MatchingEngine {
    nl: usize,
    nr: usize,
    /// Carried matching (survivors of the last returned matching), or the
    /// maximum-cardinality witness in max–min mode.
    match_left: Vec<u32>,
    match_right: Vec<u32>,
    via_left: Vec<EdgeId>,
    /// Epoch-stamped Kuhn/Hopcroft–Karp scratch (visited, dist, queue).
    search: SearchState,
    /// Full-graph CSR adjacency: built once per run, repaired as edges die.
    adj: CsrAdj,
    /// Threshold-probe matching and adjacency (max–min mode). The probe
    /// adjacency holds the edges of weight `>= last_bottleneck` *across*
    /// peels — `observe_peel` removes the few peeled edges that fell below
    /// the bound, and the threshold descent appends — together with its
    /// transpose (right-indexed), which the co-reachability certificate
    /// needs.
    probe_left: Vec<u32>,
    probe_right: Vec<u32>,
    probe_via: Vec<EdgeId>,
    probe_adj: CsrAdj,
    probe_radj: CsrAdj,
    /// Dulmage–Mendelsohn reachability certificates of the probe matching:
    /// `d_*` = on an alternating path from a free left node, `c_*` = an
    /// alternating path leads to a free right node. While the matching is
    /// maximum the two are disjoint, and inserting edge `(l, r)` creates an
    /// augmenting path iff it connects them — an O(1) test that replaces a
    /// full probe solve per inserted edge.
    d_left: Vec<bool>,
    d_right: Vec<bool>,
    c_left: Vec<bool>,
    c_right: Vec<bool>,
    reach_queue: Vec<u32>,
    /// Live-edge order, in the representation `repr` names. `order` is the
    /// greedy-seeded mode's full array: every live edge sorted by
    /// (weight desc, id asc). `prefix` + `pool` are the max–min mode's
    /// split: `prefix` holds exactly the edges of weight
    /// `>= last_bottleneck` in that same sorted order — the threshold
    /// sweep's insertion order and the canonical greedy-seed order — and
    /// `pool` holds every other live edge in a max-heap popping in that
    /// order too, so a descent below the bound consumes it seamlessly.
    order: Vec<(EdgeId, Weight)>,
    prefix: Vec<PrefixEntry>,
    pool: BinaryHeap<(Weight, Reverse<EdgeId>)>,
    repr: OrderRepr,
    changed: Vec<(EdgeId, Weight)>,
    split_changed: Vec<PrefixEntry>,
    peel_pos: Vec<u32>,
    /// Peel stamps per edge id, so the split repair can tell "was this
    /// prefix entry just peeled?" in O(1) during its single compaction
    /// pass. Epoch-stamped like the search scratch: one bump per repair,
    /// never a clear.
    edge_mark: Vec<u32>,
    mark_epoch: u32,
    /// Carried probe-matching pairs dropped by the split repair since the
    /// last threshold search consumed the count. The carried matching had
    /// full target cardinality, so the next warm probe's size is
    /// `target - carry_dropped` without rescanning any pair.
    carry_dropped: usize,
    /// True when the carried witness matching may have lost maximality —
    /// set when a peel kills one of its pairs, cleared by the re-augment.
    /// Removing edges never *raises* the maximum cardinality, so an intact
    /// maximum matching stays maximum and the re-augment can be skipped.
    witness_dirty: bool,
    /// Warm-start state of the bottleneck search.
    last_bottleneck: Option<Weight>,
    last_target: usize,
}

impl MatchingEngine {
    /// Creates an empty engine; [`begin`](MatchingEngine::begin) sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine already prepared for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        let mut e = Self::new();
        e.begin(g);
        e
    }

    /// Prepares the engine for a peeling run over `g`: sizes every buffer
    /// (keeping capacity from earlier runs), clears the carried matching
    /// and builds the CSR adjacency (the run's single full build). The
    /// live-edge order representations are built lazily by the first
    /// matching call that needs one. O(n + m) once per run.
    pub fn begin(&mut self, g: &Graph) {
        self.nl = g.left_count();
        self.nr = g.right_count();
        self.match_left.clear();
        self.match_left.resize(self.nl, NIL);
        self.match_right.clear();
        self.match_right.resize(self.nr, NIL);
        self.via_left.clear();
        self.via_left.resize(self.nl, EdgeId(0));
        self.probe_left.clear();
        self.probe_left.resize(self.nl, NIL);
        self.probe_right.clear();
        self.probe_right.resize(self.nr, NIL);
        self.probe_via.clear();
        self.probe_via.resize(self.nl, EdgeId(0));
        self.search.prepare(self.nl);
        self.adj.build(g);
        self.probe_adj.clone_layout(&self.adj);
        self.probe_radj.build_transposed_layout(g);
        self.d_left.clear();
        self.d_left.resize(self.nl, false);
        self.d_right.clear();
        self.d_right.resize(self.nr, false);
        self.c_left.clear();
        self.c_left.resize(self.nl, false);
        self.c_right.clear();
        self.c_right.resize(self.nr, false);
        self.order.clear();
        self.prefix.clear();
        self.pool.clear();
        self.repr = OrderRepr::Stale;
        self.edge_mark.clear();
        self.edge_mark.resize(g.edge_id_bound(), 0);
        self.mark_epoch = 0;
        self.carry_dropped = 0;
        self.witness_dirty = true;
        self.last_bottleneck = None;
        self.last_target = usize::MAX;
    }

    /// Makes `order` hold every live edge sorted by (weight desc, id asc),
    /// rebuilding from the graph only when the representation changed; in
    /// steady greedy-seeded use, `observe_peel` keeps it sorted instead.
    fn ensure_full_order(&mut self, g: &Graph) {
        if self.repr == OrderRepr::Full {
            return;
        }
        self.order.clear();
        self.order.extend(g.edges().map(|(id, _, _, w)| (id, w)));
        self.order
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.prefix.clear();
        self.pool.clear();
        self.repr = OrderRepr::Full;
        // The probe-prefix invariant is tied to the split representation.
        self.last_bottleneck = None;
        self.last_target = usize::MAX;
    }

    /// Makes `prefix`/`pool` hold the live edges split at the achieved
    /// bottleneck. On a representation change everything lands in the pool
    /// (one O(m) heapify — cheaper than a sort) and the bound is forgotten,
    /// forcing the next threshold search to run cold; in steady max–min
    /// use, `observe_peel` maintains the split and this is a no-op.
    fn ensure_split_order(&mut self, g: &Graph) {
        if self.repr == OrderRepr::Split {
            return;
        }
        self.prefix.clear();
        let mut heap = std::mem::take(&mut self.pool).into_vec();
        heap.clear();
        heap.extend(g.edges().map(|(id, _, _, w)| (w, Reverse(id))));
        self.pool = BinaryHeap::from(heap);
        self.order.clear();
        self.repr = OrderRepr::Split;
        self.last_bottleneck = None;
        self.last_target = usize::MAX;
    }

    /// Maximum-cardinality matching grown from the survivors of the last
    /// returned matching (empty on the first call). Peel for peel this
    /// equals `hopcroft_karp::maximum_matching_seeded(g, survivors)`.
    pub fn any_perfect_matching(&mut self, g: &Graph) -> Matching {
        self.debug_check_adj(g);
        // The split order's prefix invariant assumes peels come from max–min
        // matchings (whose edges all sit in the prefix); a peel of this
        // mode's matching could damage pool entries, so drop the split — a
        // later max–min call rebuilds it cold.
        if self.repr == OrderRepr::Split {
            self.repr = OrderRepr::Stale;
            self.last_bottleneck = None;
            self.last_target = usize::MAX;
        }
        kuhn_to_maximum(
            &self.adj,
            &mut self.match_left,
            &mut self.match_right,
            &mut self.via_left,
            &mut self.search,
        );
        gather(&self.match_left, &self.via_left)
    }

    /// Maximum-cardinality matching grown from a heaviest-first greedy seed,
    /// identical to `wrgp::GreedySeeded`'s from-scratch computation but with
    /// the seed derived from the maintained order (no per-peel sort) and all
    /// scratch recycled.
    pub fn greedy_seeded_matching(&mut self, g: &Graph) -> Matching {
        self.debug_check_adj(g);
        self.ensure_full_order(g);
        let MatchingEngine {
            order,
            match_left,
            match_right,
            via_left,
            ..
        } = self;
        match_left.fill(NIL);
        match_right.fill(NIL);
        for &(e, _) in order.iter() {
            let (l, r) = (g.left_of(e), g.right_of(e));
            if match_left[l] == NIL && match_right[r] == NIL {
                match_left[l] = r as u32;
                match_right[r] = l as u32;
                via_left[l] = e;
            }
        }
        kuhn_to_maximum(
            &self.adj,
            &mut self.match_left,
            &mut self.match_right,
            &mut self.via_left,
            &mut self.search,
        );
        gather(&self.match_left, &self.via_left)
    }

    /// Maximum-cardinality matching whose minimum edge weight is maximal,
    /// equal edge-for-edge to [`crate::bottleneck::max_min_matching`] but
    /// with the cardinality witness maintained incrementally and the
    /// threshold found by a warm descending sweep instead of a cold binary
    /// search.
    pub fn max_min_matching(&mut self, g: &Graph) -> Matching {
        self.debug_check_adj(g);
        let target = self.witness_target();
        if target == 0 {
            self.last_bottleneck = None;
            self.last_target = 0;
            return Matching::new();
        }
        let warm = self.last_target == target && self.repr == OrderRepr::Split;
        self.ensure_split_order(g);
        let t_star = self.bottleneck_threshold(g, target, warm);
        self.last_bottleneck = Some(t_star);
        self.last_target = target;
        self.canonical_matching(t_star)
    }

    /// Tells the engine one peel happened: the caller subtracted `quantum`
    /// from every edge of `peeled` (removing the ones that reached zero).
    /// Drops dead pairs from the carried matching, removes dead edges from
    /// the CSR adjacency (order-preserving, so no rebuild is ever needed)
    /// and repairs whichever live-edge order is maintained: the greedy
    /// mode's full array by an O(k log m) splice, the max–min mode's short
    /// sorted prefix in place — demoting entries that fell below the weight
    /// bound to the heap pool — never a per-element pass over the bulk of
    /// the live edges.
    pub fn observe_peel(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        counters::incr(Counter::MergePasses);
        // Dead peeled edges leave the adjacency; survivors keep their slot.
        for &e in peeled.edges() {
            if !g.is_alive(e) {
                self.adj.remove(g.left_of(e), e);
            }
        }
        if !peeled.is_empty() {
            match self.repr {
                OrderRepr::Stale => {}
                OrderRepr::Full => self.repair_full_order(g, peeled, quantum),
                OrderRepr::Split => self.repair_split_order(g, peeled, quantum),
            }
        }
        // Survivors of the carried matching stay; dead pairs leave.
        let MatchingEngine {
            match_left,
            match_right,
            via_left,
            witness_dirty,
            ..
        } = self;
        for l in 0..match_left.len() {
            let r = match_left[l];
            if r != NIL && !g.is_alive(via_left[l]) {
                match_left[l] = NIL;
                match_right[r as usize] = NIL;
                *witness_dirty = true;
            }
        }
    }

    /// Splices the peeled entries of the full sorted order out and back in
    /// at their post-quantum positions (dead edges just leave).
    fn repair_full_order(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        let MatchingEngine {
            order,
            changed,
            peel_pos,
            ..
        } = self;
        locate_peeled(order, peeled, g, quantum, peel_pos);
        // The survivors, in slot order: they lost a uniform quantum, so
        // they are already sorted by (new weight desc, id asc).
        changed.clear();
        for &p in peel_pos.iter() {
            let (e, w) = order[p as usize];
            let nw = w - quantum;
            debug_assert_eq!(nw > 0, g.is_alive(e));
            if nw > 0 {
                changed.push((e, nw));
            }
        }
        splice_sorted(order, peel_pos, changed);
    }

    /// Repairs the max–min split in one pass over the prefix. The probe
    /// structures hold the edges of weight `>=` the last achieved
    /// bottleneck across peels; only the peeled edges lost weight, and
    /// every one of them sits in the prefix (it weighed at least the
    /// bottleneck), so a single compaction pass re-establishes all the
    /// warm-start invariants at once: entries still at or above the bound
    /// collect into `split_changed` (a uniform quantum preserves their
    /// (weight desc, id asc) order, so no re-sort), the rest leave the
    /// probe adjacency and the carried probe matching — counting the
    /// dropped pairs for the next warm probe — and demote to the pool,
    /// dead edges just leave. A backward in-place merge then folds the
    /// changed entries into the compacted survivors; the pool's bulk is
    /// never touched.
    fn repair_split_order(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        let bound = self
            .last_bottleneck
            .expect("split order implies an achieved bottleneck");
        let MatchingEngine {
            prefix,
            pool,
            split_changed,
            probe_adj,
            probe_radj,
            probe_left,
            probe_right,
            probe_via,
            edge_mark,
            mark_epoch,
            carry_dropped,
            ..
        } = self;
        *mark_epoch = mark_epoch.wrapping_add(1);
        if *mark_epoch == 0 {
            edge_mark.fill(0);
            *mark_epoch = 1;
        }
        let epoch = *mark_epoch;
        for &e in peeled.edges() {
            edge_mark[e.index()] = epoch;
        }
        split_changed.clear();
        let mut write = 0usize;
        for i in 0..prefix.len() {
            let ent = prefix[i];
            if edge_mark[ent.id.index()] != epoch {
                prefix[write] = ent;
                write += 1;
                continue;
            }
            let nw = ent.w - quantum;
            debug_assert_eq!(nw, g.weight(ent.id), "non-uniform quantum?");
            if nw >= bound {
                split_changed.push(PrefixEntry { w: nw, ..ent });
            } else {
                // Fell below the bound (or died): leave the probe
                // structures, and the carried probe matching if the pair
                // rode on this edge.
                probe_adj.remove(ent.l as usize, ent.id);
                probe_radj.remove(ent.r as usize, ent.id);
                let l = ent.l as usize;
                if probe_left[l] != NIL && probe_via[l] == ent.id {
                    probe_left[l] = NIL;
                    probe_right[ent.r as usize] = NIL;
                    *carry_dropped += 1;
                }
                if nw > 0 {
                    pool.push((nw, Reverse(ent.id)));
                }
            }
        }
        debug_assert_eq!(
            prefix.len() - write,
            peeled.len(),
            "every peeled edge sits in the prefix"
        );
        prefix.truncate(write);
        // Backward in-place merge of the changed entries (both runs are
        // sorted by (weight desc, id asc); ids make every key unique).
        let k = split_changed.len();
        if k > 0 {
            let mut i = prefix.len();
            prefix.resize(
                i + k,
                PrefixEntry {
                    id: EdgeId(0),
                    w: 0,
                    l: 0,
                    r: 0,
                },
            );
            let mut j = k;
            let mut w = prefix.len();
            while j > 0 {
                let c = split_changed[j - 1];
                if i > 0
                    && (prefix[i - 1].w < c.w
                        || (prefix[i - 1].w == c.w && prefix[i - 1].id > c.id))
                {
                    prefix[w - 1] = prefix[i - 1];
                    i -= 1;
                } else {
                    prefix[w - 1] = c;
                    j -= 1;
                }
                w -= 1;
            }
        }
    }

    /// Bottleneck achieved by the last [`max_min_matching`] call, if any.
    ///
    /// [`max_min_matching`]: MatchingEngine::max_min_matching
    pub fn last_bottleneck(&self) -> Option<Weight> {
        self.last_bottleneck
    }

    /// The maintained adjacency must mirror the graph's live edges exactly
    /// (the caller peeled and then told us via `observe_peel`).
    fn debug_check_adj(&self, g: &Graph) {
        debug_assert_eq!(g.left_count(), self.nl);
        debug_assert_eq!(
            self.adj.live_entries(),
            g.edge_count(),
            "CSR adjacency out of sync with the graph: call observe_peel \
             after every peel"
        );
    }

    /// Re-augments the carried witness to a maximum matching of `g` and
    /// returns its cardinality. Dropping dead edges from a maximum matching
    /// and augmenting until no path remains is again maximum (Berge), so
    /// this equals `maximum_matching(g).len()` at a fraction of the work —
    /// and when the peel killed none of the witness's own pairs the
    /// matching never lost maximality (removing edges cannot raise the
    /// maximum cardinality), so even that augmentation is skipped.
    fn witness_target(&mut self) -> usize {
        let MatchingEngine {
            adj,
            match_left,
            match_right,
            via_left,
            search,
            witness_dirty,
            ..
        } = self;
        if *witness_dirty {
            hk_augment_to_maximum(adj, match_left, match_right, via_left, search);
            *witness_dirty = false;
        }
        match_left.iter().filter(|&&x| x != NIL).count()
    }

    /// Largest distinct weight `t` such that edges of weight `>= t` admit a
    /// matching of size `target`. When `warm` holds, the probe structures
    /// already contain the edges of weight `>= last_bottleneck` — a sound
    /// upper bound, see the module docs — maintained by `observe_peel`, so
    /// the batch probe at the bound costs one seeded augmentation and zero
    /// rebuilding. Below the bound the descent inserts edges in decreasing
    /// weight order (the paper's Figure 6 order), but instead of solving a
    /// probe per distinct weight it keeps the Dulmage–Mendelsohn
    /// reachability certificates of the current (maximum) probe matching:
    /// inserting edge `(l, r)` creates an augmenting path iff `l` is
    /// alternating-reachable from a free left (`d_left`) and from `r` an
    /// alternating path leads to a free right (`c_right`) — the two sides
    /// would otherwise splice into an augmenting path of the old graph,
    /// contradicting maximality. Most insertions therefore cost an O(1)
    /// test (plus amortised certificate growth); an actual matching solve
    /// happens only when the cardinality really increases.
    ///
    /// Only the *size* of a probe matching is observable (the threshold it
    /// implies), so the probe matching can be seeded freely: the previous
    /// peel's returned matching, minus what the peel destroyed, is a valid
    /// matching of the warm prefix, and augmenting it to maximality reaches
    /// the same cardinality as a from-scratch solve.
    ///
    /// Postcondition: `probe_adj`/`probe_radj` hold exactly the edges of
    /// weight `>= t` for the returned `t` — the invariant `observe_peel`
    /// carries into the next peel.
    fn bottleneck_threshold(&mut self, g: &Graph, target: usize, warm: bool) -> Weight {
        let MatchingEngine {
            prefix,
            pool,
            probe_adj,
            probe_radj,
            probe_left,
            probe_right,
            probe_via,
            search,
            last_bottleneck,
            carry_dropped,
            d_left,
            d_right,
            c_left,
            c_right,
            reach_queue,
            ..
        } = self;
        // `j` = how many prefix entries the probes hold; the descent first
        // consumes the prefix, then pops the pool, appending each pop to the
        // prefix so that `prefix` stays exactly the inserted edge set.
        let mut j;
        let mut matched;
        match if warm { *last_bottleneck } else { None } {
            Some(_bound) => {
                j = prefix.len();
                debug_assert_eq!(
                    probe_adj.live_entries(),
                    j,
                    "probe adjacency out of sync with the weight bound"
                );
                // Carried pairs whose edge fell below the bound were
                // already dropped (and counted) by the split repair in
                // `observe_peel`; the carried matching had full target
                // cardinality (it is the previous canonical matching), so
                // its size is known from that count alone.
                matched = target - *carry_dropped;
                *carry_dropped = 0;
                debug_assert_eq!(
                    matched,
                    probe_left.iter().filter(|&&r| r != NIL).count(),
                    "drop count out of sync with the carried probe matching"
                );
                // Repair towards the target with single Kuhn passes,
                // stopping the moment it is reached: on most peels every
                // dropped pair re-augments immediately and no failing
                // (whole-region) exploration ever runs. Only a genuinely
                // infeasible prefix pays one shared failing pass — which
                // doubles as the maximality proof the certificates below
                // require.
                counters::incr(Counter::ThresholdProbes);
                if matched < target && j > 0 {
                    search.next_epoch();
                    let mut progress = true;
                    'repair: while progress {
                        progress = false;
                        for free in 0..probe_left.len() {
                            if probe_left[free] != NIL {
                                continue;
                            }
                            counters::incr(Counter::KuhnAttempts);
                            if kuhn_augment(
                                free,
                                probe_adj,
                                probe_left,
                                probe_right,
                                probe_via,
                                search,
                            ) {
                                search.next_epoch();
                                matched += 1;
                                progress = true;
                                if matched == target {
                                    break 'repair;
                                }
                            }
                        }
                    }
                }
                if matched == target {
                    if let Some(ent) = prefix.last() {
                        return ent.w;
                    }
                }
            }
            None => {
                probe_adj.clear_rows();
                probe_radj.clear_rows();
                probe_left.fill(NIL);
                probe_right.fill(NIL);
                *carry_dropped = 0;
                j = 0;
                matched = 0;
            }
        }
        debug_assert!(
            j < prefix.len() || !pool.is_empty(),
            "an infeasible prefix is never the whole live graph"
        );
        compute_reach(
            probe_adj,
            probe_radj,
            probe_left,
            probe_right,
            d_left,
            d_right,
            c_left,
            c_right,
            reach_queue,
        );
        loop {
            let (e, w, l, r) = if j < prefix.len() {
                let ent = prefix[j];
                (ent.id, ent.w, ent.l as usize, ent.r as usize)
            } else {
                let (w, Reverse(e)) = pool
                    .pop()
                    .expect("inserting every live edge reaches the maximum matching size");
                let (l, r) = (g.left_of(e), g.right_of(e));
                prefix.push(PrefixEntry {
                    id: e,
                    w,
                    l: l as u32,
                    r: r as u32,
                });
                (e, w, l, r)
            };
            probe_adj.insert_by_id(l, r as u32, e);
            probe_radj.push(r, l as u32, e);
            j += 1;
            let augmentable = if d_left[l] && c_right[r] {
                true
            } else if d_left[l] && !d_right[r] {
                d_extend(
                    r,
                    probe_adj,
                    probe_right,
                    d_left,
                    d_right,
                    c_left,
                    c_right,
                    reach_queue,
                )
            } else if c_right[r] && !c_left[l] {
                c_extend(
                    l,
                    probe_radj,
                    probe_left,
                    probe_right,
                    d_left,
                    d_right,
                    c_left,
                    c_right,
                    reach_queue,
                )
            } else {
                false
            };
            if !augmentable {
                continue;
            }
            // Exactly one augmenting path exists (one edge was added to a
            // maximum matching), so the first successful Kuhn pass restores
            // maximality — no failing proof search is needed.
            counters::incr(Counter::ThresholdProbes);
            search.next_epoch();
            let mut augmented = false;
            for free in 0..probe_left.len() {
                if probe_left[free] != NIL {
                    continue;
                }
                counters::incr(Counter::KuhnAttempts);
                if kuhn_augment(free, probe_adj, probe_left, probe_right, probe_via, search) {
                    augmented = true;
                    break;
                }
            }
            debug_assert!(augmented, "certificates promised an augmenting path");
            matched += 1;
            if matched == target {
                // Complete the current weight group so the probe structures
                // (and the prefix mirroring them) hold exactly the edges of
                // weight >= t for the next peel — first from the prefix,
                // then from the pool. The two only share the group when the
                // descent has already crossed into the pool, in which case
                // the prefix is exhausted.
                while j < prefix.len() && prefix[j].w == w {
                    let ent = prefix[j];
                    probe_adj.insert_by_id(ent.l as usize, ent.r, ent.id);
                    probe_radj.push(ent.r as usize, ent.l, ent.id);
                    j += 1;
                }
                if j < prefix.len() {
                    // A cold sweep over a still-valid split (the cardinality
                    // target changed) stopped above the old bound: the
                    // prefix tail is below the new threshold — demote it.
                    for ent in prefix[j..].iter() {
                        pool.push((ent.w, Reverse(ent.id)));
                    }
                    prefix.truncate(j);
                } else {
                    while pool.peek().is_some_and(|&(pw, _)| pw == w) {
                        let (pw, Reverse(e2)) = pool.pop().unwrap();
                        let (l2, r2) = (g.left_of(e2), g.right_of(e2));
                        prefix.push(PrefixEntry {
                            id: e2,
                            w: pw,
                            l: l2 as u32,
                            r: r2 as u32,
                        });
                        probe_adj.insert_by_id(l2, r2 as u32, e2);
                        probe_radj.push(r2, l2 as u32, e2);
                    }
                }
                return w;
            }
            compute_reach(
                probe_adj,
                probe_radj,
                probe_left,
                probe_right,
                d_left,
                d_right,
                c_left,
                c_right,
                reach_queue,
            );
        }
    }

    /// The canonical threshold matching, byte-identical in traversal order
    /// to [`crate::bottleneck::canonical_matching_at`]: a heaviest-first
    /// greedy seed over the edges of weight `>= t` — read straight off the
    /// maintained prefix, no sort — augmented to maximum cardinality over
    /// ascending-id rows. The cold path materialises a filtered CSR for
    /// that; the engine already has one: `probe_adj` holds exactly the
    /// edges of weight `>= t` (the threshold postcondition, re-checked
    /// below) and its rows are kept in ascending-id order by
    /// [`CsrAdj::insert_by_id`]/[`CsrAdj::remove`], so they are
    /// indistinguishable from a fresh `build_where` and the matchings agree
    /// edge-for-edge, `dfs_edge_visits` included.
    ///
    /// The probe matching is overwritten with the result — exactly the
    /// carried seed the next peel's warm batch probe wants, since every
    /// edge of the result passes the next prefix filter until the peel
    /// damages it.
    fn canonical_matching(&mut self, t: Weight) -> Matching {
        let MatchingEngine {
            prefix,
            probe_adj,
            probe_left,
            probe_right,
            probe_via,
            search,
            ..
        } = self;
        probe_left.fill(NIL);
        probe_right.fill(NIL);
        // The prefix holds exactly the edges of weight >= t, sorted by
        // (weight desc, id asc) — the same key the cold path sorts the
        // filtered edges by — so walking it *is* the greedy sequence.
        for ent in prefix.iter() {
            debug_assert!(ent.w >= t, "prefix entry below the achieved threshold");
            let (l, r) = (ent.l as usize, ent.r as usize);
            if probe_left[l] == NIL && probe_right[r] == NIL {
                probe_left[l] = ent.r;
                probe_right[r] = ent.l;
                probe_via[l] = ent.id;
            }
        }
        debug_assert_eq!(
            probe_adj.live_entries(),
            prefix.len(),
            "threshold postcondition: probe adjacency holds exactly the \
             edges of weight >= t"
        );
        kuhn_to_maximum(probe_adj, probe_left, probe_right, probe_via, search);
        gather(probe_left, probe_via)
    }
}

/// Locates each peeled edge's slot in the (weight desc, id asc)-sorted
/// `list` by binary search on its pre-peel key (current weight plus the
/// quantum; a dead edge weighs 0, so its pre-peel weight was exactly the
/// quantum). Leaves the slot indices, ascending, in `pos`.
fn locate_peeled(
    list: &[(EdgeId, Weight)],
    peeled: &Matching,
    g: &Graph,
    quantum: Weight,
    pos: &mut Vec<u32>,
) {
    pos.clear();
    for &e in peeled.edges() {
        let w_old = g.weight(e) + quantum;
        let p = list.partition_point(|&(id, w)| w > w_old || (w == w_old && id < e));
        debug_assert!(
            p < list.len() && list[p] == (e, w_old),
            "peeled entry missing at its pre-peel key (non-uniform quantum?)"
        );
        pos.push(p as u32);
    }
    pos.sort_unstable();
}

/// Splices the entries at (ascending, non-empty) positions `pos` out of the
/// (weight desc, id asc)-sorted `list` and re-inserts `changed` — already
/// sorted by the same key, with keys no larger than the removed ones — at
/// their new positions: one contiguous segment move per gap and per
/// re-insertion, O(k log |list|) binary searches, never a per-element pass.
fn splice_sorted(list: &mut Vec<(EdgeId, Weight)>, pos: &[u32], changed: &[(EdgeId, Weight)]) {
    // Close the removed slots with one contiguous move per gap segment.
    let mut dst = pos[0] as usize;
    for (j, &p) in pos.iter().enumerate() {
        let p = p as usize;
        let next = pos.get(j + 1).map_or(list.len(), |&q| q as usize);
        list.copy_within(p + 1..next, dst);
        dst += next - p - 1;
    }
    list.truncate(dst);
    // Re-insert back to front: each entry opens its slot by shifting the
    // segment between its insertion point and the previous one in a single
    // move.
    list.resize(dst + changed.len(), (EdgeId(0), 0));
    let mut src_end = dst;
    let mut write_end = list.len();
    for j in (0..changed.len()).rev() {
        let c = changed[j];
        let ins = list[..src_end].partition_point(|&(id, w)| w > c.1 || (w == c.1 && id < c.0));
        let seg = src_end - ins;
        list.copy_within(ins..src_end, write_end - seg);
        write_end -= seg + 1;
        list[write_end] = c;
        src_end = ins;
    }
    debug_assert_eq!(src_end, write_end);
}

/// Rebuilds both Dulmage–Mendelsohn reachability certificates of the probe
/// matching from scratch: `d_*` marks every vertex on an alternating path
/// *from* a free left node (even length at lefts, odd at rights), `c_*`
/// every vertex from which an alternating path *reaches* a free right node.
/// While the matching is maximum the two sets are disjoint — an augmenting
/// path is exactly a D-to-C connection. O(nodes + live probe edges).
#[allow(clippy::too_many_arguments)]
fn compute_reach(
    probe_adj: &CsrAdj,
    probe_radj: &CsrAdj,
    probe_left: &[u32],
    probe_right: &[u32],
    d_left: &mut [bool],
    d_right: &mut [bool],
    c_left: &mut [bool],
    c_right: &mut [bool],
    queue: &mut Vec<u32>,
) {
    d_left.fill(false);
    d_right.fill(false);
    c_left.fill(false);
    c_right.fill(false);
    // D: forward BFS from the free left nodes. Every edge out of a D-left is
    // usable (a matched D-left's own partner is already in D — it is how the
    // left was reached), and every D-right is matched (a free one would end
    // an augmenting path, contradicting maximality).
    queue.clear();
    for l in 0..probe_left.len() {
        if probe_left[l] == NIL {
            d_left[l] = true;
            queue.push(l as u32);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let l = queue[head] as usize;
        head += 1;
        for &(r, _) in probe_adj.row(l) {
            let r = r as usize;
            if d_right[r] {
                continue;
            }
            d_right[r] = true;
            let p = probe_right[r];
            debug_assert_ne!(p, NIL, "a D-reachable free right contradicts maximality");
            if !d_left[p as usize] {
                d_left[p as usize] = true;
                queue.push(p);
            }
        }
    }
    // C: backward BFS from the free right nodes over the transposed rows.
    // Leaving a right towards its own partner uses the matched pair with the
    // wrong parity (the path could only bounce straight back), so that left
    // is skipped; every other edge into the right is usable.
    queue.clear();
    for r in 0..probe_right.len() {
        if probe_right[r] == NIL {
            c_right[r] = true;
            queue.push(r as u32);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let r = queue[head] as usize;
        head += 1;
        for &(l, _) in probe_radj.row(r) {
            if probe_right[r] == l {
                continue;
            }
            let l = l as usize;
            if c_left[l] {
                continue;
            }
            c_left[l] = true;
            let m = probe_left[l];
            debug_assert_ne!(m, NIL, "a C-reaching free left contradicts maximality");
            if !c_right[m as usize] {
                c_right[m as usize] = true;
                queue.push(m);
            }
        }
    }
}

/// Extends the D certificate through right node `r0`, which just became
/// reachable (a new edge arrived from a D-left and `r0` was not yet in D).
/// Marks the whole newly reachable region; returns `true` the moment it
/// touches a C vertex — then the new edge completes an augmenting path and
/// both certificates are stale (the caller augments and recomputes).
/// `r0` is matched: a free `r0` would be in C by the base case and the
/// caller's D-to-C test would have fired instead.
#[allow(clippy::too_many_arguments)]
fn d_extend(
    r0: usize,
    probe_adj: &CsrAdj,
    probe_right: &[u32],
    d_left: &mut [bool],
    d_right: &mut [bool],
    c_left: &[bool],
    c_right: &[bool],
    queue: &mut Vec<u32>,
) -> bool {
    debug_assert!(!d_right[r0] && !c_right[r0]);
    d_right[r0] = true;
    let p = probe_right[r0];
    debug_assert_ne!(p, NIL);
    if c_left[p as usize] {
        return true;
    }
    queue.clear();
    if !d_left[p as usize] {
        d_left[p as usize] = true;
        queue.push(p);
    }
    let mut head = 0;
    while head < queue.len() {
        let l = queue[head] as usize;
        head += 1;
        for &(r, _) in probe_adj.row(l) {
            let r = r as usize;
            if d_right[r] {
                continue;
            }
            if c_right[r] {
                return true;
            }
            d_right[r] = true;
            let p = probe_right[r];
            debug_assert_ne!(p, NIL, "a D-reachable free right contradicts maximality");
            let p_us = p as usize;
            if d_left[p_us] {
                continue;
            }
            if c_left[p_us] {
                return true;
            }
            d_left[p_us] = true;
            queue.push(p);
        }
    }
    false
}

/// Extends the C certificate through left node `l0`, which just gained an
/// alternating path to a free right (a new edge towards a C-right arrived
/// and `l0` was not yet in C). Same contract as [`d_extend`], mirrored:
/// returns `true` on touching a D vertex. `l0` is matched (a free left is
/// in D by the base case, and the caller only extends C from non-D lefts).
#[allow(clippy::too_many_arguments)]
fn c_extend(
    l0: usize,
    probe_radj: &CsrAdj,
    probe_left: &[u32],
    probe_right: &[u32],
    d_left: &[bool],
    d_right: &[bool],
    c_left: &mut [bool],
    c_right: &mut [bool],
    queue: &mut Vec<u32>,
) -> bool {
    debug_assert!(!c_left[l0] && !d_left[l0]);
    c_left[l0] = true;
    let m = probe_left[l0];
    debug_assert_ne!(m, NIL);
    if d_right[m as usize] {
        return true;
    }
    queue.clear();
    if !c_right[m as usize] {
        c_right[m as usize] = true;
        queue.push(m);
    }
    let mut head = 0;
    while head < queue.len() {
        let r = queue[head] as usize;
        head += 1;
        for &(l, _) in probe_radj.row(r) {
            if probe_right[r] == l {
                continue; // the matched pair: wrong parity for C propagation
            }
            let l = l as usize;
            if c_left[l] {
                continue;
            }
            if d_left[l] {
                return true;
            }
            c_left[l] = true;
            let m = probe_left[l];
            debug_assert_ne!(m, NIL, "a C-reaching free left contradicts maximality");
            let m_us = m as usize;
            if c_right[m_us] {
                continue;
            }
            if d_right[m_us] {
                return true;
            }
            c_right[m_us] = true;
            queue.push(m);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_graph, GraphParams};
    use crate::{bottleneck, greedy, hopcroft_karp};
    use rand::{rngs::SmallRng, SeedableRng};

    /// Peels `g` to emptiness with `step`, calling `oracle` on the same
    /// residual graph first and asserting exact agreement per peel.
    fn drive<F, O>(mut g: Graph, mut step: F, mut oracle: O)
    where
        F: FnMut(&mut MatchingEngine, &Graph) -> Matching,
        O: FnMut(&Graph, &Matching) -> Matching,
    {
        let mut engine = MatchingEngine::for_graph(&g);
        let mut carried = Matching::new();
        while !g.is_empty() {
            let survivors = Matching::from_edges(
                carried
                    .edges()
                    .iter()
                    .copied()
                    .filter(|&e| g.is_alive(e))
                    .collect(),
            );
            let expect = oracle(&g, &survivors);
            let got = step(&mut engine, &g);
            assert_eq!(got.edges(), expect.edges(), "engine diverged from oracle");
            let quantum = got
                .min_weight(&g)
                .expect("non-empty graph yields a matching");
            for &e in got.edges() {
                g.decrease_weight(e, quantum);
            }
            engine.observe_peel(&g, &got, quantum);
            carried = got;
        }
    }

    fn campaign(seed: u64) -> impl Iterator<Item = Graph> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 25),
        };
        (0..60).map(move |_| random_graph(&mut rng, &params))
    }

    #[test]
    fn any_perfect_equals_seeded_oracle_chain() {
        for g in campaign(5) {
            drive(
                g,
                |e, g| e.any_perfect_matching(g),
                hopcroft_karp::maximum_matching_seeded,
            );
        }
    }

    #[test]
    fn greedy_seeded_equals_cold_greedy_per_peel() {
        for g in campaign(6) {
            drive(
                g,
                |e, g| e.greedy_seeded_matching(g),
                |g, _| {
                    let seed = greedy::maximal_matching_heaviest_first(g);
                    hopcroft_karp::maximum_matching_seeded(g, &seed)
                },
            );
        }
    }

    #[test]
    fn max_min_equals_cold_bottleneck_per_peel() {
        for g in campaign(7) {
            drive(
                g,
                |e, g| e.max_min_matching(g),
                |g, _| bottleneck::max_min_matching(g),
            );
        }
    }

    #[test]
    fn engine_reusable_across_runs() {
        let mut engine = MatchingEngine::new();
        let mut rng = SmallRng::seed_from_u64(8);
        let params = GraphParams {
            max_nodes_per_side: 6,
            max_edges: 24,
            weight_range: (1, 12),
        };
        for _ in 0..20 {
            let mut g = random_graph(&mut rng, &params);
            engine.begin(&g);
            while !g.is_empty() {
                let expect = bottleneck::max_min_matching(&g);
                let got = engine.max_min_matching(&g);
                assert_eq!(got.edges(), expect.edges());
                let quantum = got.min_weight(&g).unwrap();
                for &e in got.edges() {
                    g.decrease_weight(e, quantum);
                }
                engine.observe_peel(&g, &got, quantum);
            }
        }
    }

    /// Alternating modes within one run forces every lazy order-
    /// representation switch (stale -> split -> full -> split, and the
    /// any-perfect downgrade of a live split); each mode must still agree
    /// with its cold oracle right after a switch.
    #[test]
    fn mode_switches_rebuild_order_lazily() {
        let mut rng = SmallRng::seed_from_u64(9);
        let params = GraphParams {
            max_nodes_per_side: 6,
            max_edges: 24,
            weight_range: (1, 12),
        };
        for round in 0..20 {
            let mut g = random_graph(&mut rng, &params);
            let mut engine = MatchingEngine::for_graph(&g);
            let mut turn = round; // vary which mode opens the run
            while !g.is_empty() {
                let m = match turn % 3 {
                    0 => {
                        let expect = bottleneck::max_min_matching(&g);
                        let got = engine.max_min_matching(&g);
                        assert_eq!(got.edges(), expect.edges());
                        got
                    }
                    1 => {
                        let seed = greedy::maximal_matching_heaviest_first(&g);
                        let expect = hopcroft_karp::maximum_matching_seeded(&g, &seed);
                        let got = engine.greedy_seeded_matching(&g);
                        assert_eq!(got.edges(), expect.edges());
                        got
                    }
                    _ => {
                        let got = engine.any_perfect_matching(&g);
                        assert_eq!(got.len(), hopcroft_karp::maximum_matching(&g).len());
                        assert!(got.is_valid(&g));
                        got
                    }
                };
                turn += 1;
                let quantum = m.min_weight(&g).unwrap();
                for &e in m.edges() {
                    g.decrease_weight(e, quantum);
                }
                engine.observe_peel(&g, &m, quantum);
            }
        }
    }

    #[test]
    fn empty_graph_yields_empty_matchings() {
        let g = Graph::new(3, 3);
        let mut engine = MatchingEngine::for_graph(&g);
        assert!(engine.any_perfect_matching(&g).is_empty());
        assert!(engine.max_min_matching(&g).is_empty());
        assert!(engine.greedy_seeded_matching(&g).is_empty());
        assert_eq!(engine.last_bottleneck(), None);
    }

    #[test]
    fn warm_bound_survives_cardinality_changes() {
        // A graph engineered so the maximum cardinality drops between
        // peels: the warm bound must be bypassed, not trusted. Left 1's
        // only edge dies in the first peel, and the surviving heavy edge
        // has a *larger* bottleneck than the first peel's.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 100);
        g.add_edge(1, 1, 1);
        let mut engine = MatchingEngine::for_graph(&g);
        let m1 = engine.max_min_matching(&g);
        assert_eq!(m1.len(), 2);
        assert_eq!(m1.min_weight(&g), Some(1));
        for &e in m1.edges() {
            g.decrease_weight(e, 1);
        }
        engine.observe_peel(&g, &m1, 1);
        let m2 = engine.max_min_matching(&g);
        assert_eq!(m2.len(), 1);
        assert_eq!(m2.min_weight(&g), Some(99));
        assert_eq!(engine.last_bottleneck(), Some(99));
    }

    /// The headline tentpole guarantee: across a whole peeling run the
    /// engine performs exactly one adjacency build (at `begin`) and zero
    /// full scratch clears, no matter how many peels, probes and
    /// augmentations happen.
    #[test]
    fn one_adj_build_per_run_and_no_epoch_resets() {
        use telemetry::counters::{self, Counter};
        let _guard = crate::testutil::COUNTER_LOCK.lock().unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 25),
        };
        let mut engine = MatchingEngine::new();
        for _ in 0..10 {
            let mut g = random_graph(&mut rng, &params);
            counters::enable();
            let before = counters::local_snapshot();
            engine.begin(&g);
            while !g.is_empty() {
                let m = engine.max_min_matching(&g);
                let quantum = m.min_weight(&g).unwrap();
                for &e in m.edges() {
                    g.decrease_weight(e, quantum);
                }
                engine.observe_peel(&g, &m, quantum);
            }
            let delta = counters::local_snapshot().delta(&before);
            counters::disable();
            assert_eq!(
                delta.get(Counter::AdjRebuilds),
                1,
                "exactly one CSR build per peeling run"
            );
            assert_eq!(
                delta.get(Counter::EpochResets),
                0,
                "no full scratch clears during a run"
            );
        }
    }
}
