//! Incremental peeling engine: matching state and scratch buffers reused
//! across the peels of one WRGP run.
//!
//! Every from-scratch matching routine in this crate allocates its
//! adjacency lists, match arrays and BFS/DFS scratch per call; the WRGP
//! loop of `kpbs` calls one of them once per peel, and a peel changes the
//! graph only slightly (a uniform quantum subtracted from one matching, a
//! few edges dying). [`MatchingEngine`] exploits that:
//!
//! * **Buffer recycling** — adjacency, match arrays, visited/dist/queue
//!   scratch are allocated once per schedule and reused every peel.
//! * **Matching reuse** — the previous peel's matching, minus its dead
//!   edges, seeds the next peel's augmentation
//!   ([`MatchingEngine::any_perfect_matching`]), so each peel only repairs
//!   the few pairs it lost instead of rebuilding all of them.
//! * **Warm threshold search** — for bottleneck (max–min) matchings the
//!   previous peel's achieved bottleneck is an upper bound on the next
//!   one (see below), so the descending threshold sweep starts there and
//!   each probe augments the previous probe's matching
//!   ([`MatchingEngine::max_min_matching`]).
//! * **Order maintenance** — the heaviest-first edge order that both the
//!   greedy seed and the threshold sweep need is kept sorted across peels
//!   by an O(m) two-run merge instead of an O(m log m) re-sort: the peeled
//!   edges all lose the *same* quantum, so they keep their relative order.
//!
//! # Seeded-augmentation invariant
//!
//! After [`MatchingEngine::observe_peel`] the engine's carried matching is
//! exactly the previous returned matching restricted to edges still alive —
//! a valid matching of the residual graph. Augmenting it to maximality
//! (Berge) yields a maximum matching, so
//! [`MatchingEngine::any_perfect_matching`] is equivalent, peel for peel,
//! to `hopcroft_karp::maximum_matching_seeded(g, survivors)` computed from
//! scratch — the differential tests in `kpbs` assert exactly that.
//!
//! # Warm bound for the bottleneck search
//!
//! Let `t*` be the max–min threshold of the graph before a peel and let the
//! peel subtract quantum `q > 0` from each edge of one maximum-cardinality
//! matching. As long as the maximum cardinality is unchanged (in WRGP it is
//! always the side size), every maximum-cardinality matching `M` of the
//! residual graph is also one of the pre-peel graph, and its pre-peel
//! minimum is no smaller, so `min_new(M) <= min_old(M) <= t*`: the new
//! threshold never exceeds the old one. The sweep therefore batch-inserts
//! all edges of weight `>= t*_old` at once and only then descends one
//! distinct weight at a time. When the cardinality did change (possible on
//! irregular inputs), the engine falls back to the full descending sweep.
//!
//! The matching *returned* by [`MatchingEngine::max_min_matching`] is
//! computed by the same deterministic filtered solve the from-scratch
//! [`crate::bottleneck::max_min_matching`] ends with, so the two agree
//! edge-for-edge, not just on the achieved bottleneck.

use crate::graph::{EdgeId, Graph, Weight};
use crate::hopcroft_karp::{gather, hk_augment_to_maximum, kuhn_augment};
use crate::matching::Matching;
use std::collections::VecDeque;
use telemetry::counters::{self, Counter};

const NIL: u32 = u32::MAX;

/// Reusable matching engine for the WRGP peeling loop. See the module
/// documentation for the invariants it maintains between peels.
///
/// Protocol: call [`begin`](MatchingEngine::begin) once per peeling run,
/// then alternate one matching method with one
/// [`observe_peel`](MatchingEngine::observe_peel) after the caller has
/// subtracted the quantum from the graph.
#[derive(Debug, Default)]
pub struct MatchingEngine {
    nl: usize,
    nr: usize,
    /// Carried matching (survivors of the last returned matching), or the
    /// maximum-cardinality witness in max–min mode.
    match_left: Vec<u32>,
    match_right: Vec<u32>,
    via_left: Vec<EdgeId>,
    /// Kuhn/Hopcroft–Karp scratch.
    visited: Vec<bool>,
    dist: Vec<u32>,
    queue: VecDeque<u32>,
    /// Full-graph adjacency, rebuilt per peel in edge-id order (O(live)).
    adj: Vec<Vec<(u32, EdgeId)>>,
    /// Threshold-probe matching and adjacency (max–min mode).
    probe_left: Vec<u32>,
    probe_right: Vec<u32>,
    probe_via: Vec<EdgeId>,
    probe_adj: Vec<Vec<(u32, EdgeId)>>,
    /// All live edges sorted by (weight desc, id asc); repaired by merge.
    order: Vec<(EdgeId, Weight)>,
    kept: Vec<(EdgeId, Weight)>,
    changed: Vec<(EdgeId, Weight)>,
    peeled_mark: Vec<bool>,
    /// Warm-start state of the bottleneck search.
    last_bottleneck: Option<Weight>,
    last_target: usize,
}

impl MatchingEngine {
    /// Creates an empty engine; [`begin`](MatchingEngine::begin) sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an engine already prepared for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        let mut e = Self::new();
        e.begin(g);
        e
    }

    /// Prepares the engine for a peeling run over `g`: sizes every buffer
    /// (keeping capacity from earlier runs), clears the carried matching and
    /// sorts the live edges heaviest-first. O(m log m) once per run.
    pub fn begin(&mut self, g: &Graph) {
        self.nl = g.left_count();
        self.nr = g.right_count();
        self.match_left.clear();
        self.match_left.resize(self.nl, NIL);
        self.match_right.clear();
        self.match_right.resize(self.nr, NIL);
        self.via_left.clear();
        self.via_left.resize(self.nl, EdgeId(0));
        self.visited.clear();
        self.visited.resize(self.nl, false);
        self.dist.clear();
        self.dist.resize(self.nl, 0);
        self.probe_left.clear();
        self.probe_left.resize(self.nl, NIL);
        self.probe_right.clear();
        self.probe_right.resize(self.nr, NIL);
        self.probe_via.clear();
        self.probe_via.resize(self.nl, EdgeId(0));
        resize_adj(&mut self.adj, self.nl);
        resize_adj(&mut self.probe_adj, self.nl);
        self.peeled_mark.clear();
        self.peeled_mark.resize(g.edge_id_bound(), false);
        self.order.clear();
        self.order.extend(g.edges().map(|(id, _, _, w)| (id, w)));
        self.order
            .sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.last_bottleneck = None;
        self.last_target = usize::MAX;
    }

    /// Maximum-cardinality matching grown from the survivors of the last
    /// returned matching (empty on the first call). Peel for peel this
    /// equals `hopcroft_karp::maximum_matching_seeded(g, survivors)`.
    pub fn any_perfect_matching(&mut self, g: &Graph) -> Matching {
        debug_assert_eq!(g.left_count(), self.nl);
        self.rebuild_adj(g);
        self.kuhn_to_maximum();
        gather(&self.match_left, &self.via_left)
    }

    /// Maximum-cardinality matching grown from a heaviest-first greedy seed,
    /// identical to `wrgp::GreedySeeded`'s from-scratch computation but with
    /// the seed derived from the maintained order (no per-peel sort) and all
    /// scratch recycled.
    pub fn greedy_seeded_matching(&mut self, g: &Graph) -> Matching {
        debug_assert_eq!(g.left_count(), self.nl);
        self.rebuild_adj(g);
        let MatchingEngine {
            order,
            match_left,
            match_right,
            via_left,
            ..
        } = self;
        match_left.fill(NIL);
        match_right.fill(NIL);
        for &(e, _) in order.iter() {
            let (l, r) = (g.left_of(e), g.right_of(e));
            if match_left[l] == NIL && match_right[r] == NIL {
                match_left[l] = r as u32;
                match_right[r] = l as u32;
                via_left[l] = e;
            }
        }
        self.kuhn_to_maximum();
        gather(&self.match_left, &self.via_left)
    }

    /// Maximum-cardinality matching whose minimum edge weight is maximal,
    /// equal edge-for-edge to [`crate::bottleneck::max_min_matching`] but
    /// with the cardinality witness maintained incrementally and the
    /// threshold found by a warm descending sweep instead of a cold binary
    /// search.
    pub fn max_min_matching(&mut self, g: &Graph) -> Matching {
        debug_assert_eq!(g.left_count(), self.nl);
        let target = self.witness_target(g);
        if target == 0 {
            self.last_bottleneck = None;
            self.last_target = 0;
            return Matching::new();
        }
        let warm = self.last_target == target;
        let t_star = self.bottleneck_threshold(g, target, warm);
        self.last_bottleneck = Some(t_star);
        self.last_target = target;
        self.canonical_matching(g, t_star)
    }

    /// Tells the engine one peel happened: the caller subtracted `quantum`
    /// from every edge of `peeled` (removing the ones that reached zero).
    /// Repairs the maintained heaviest-first order by an O(m) merge and
    /// drops dead pairs from the carried matching.
    pub fn observe_peel(&mut self, g: &Graph, peeled: &Matching, quantum: Weight) {
        counters::incr(Counter::MergePasses);
        let MatchingEngine {
            order,
            kept,
            changed,
            peeled_mark,
            ..
        } = self;
        for &e in peeled.edges() {
            peeled_mark[e.index()] = true;
        }
        kept.clear();
        changed.clear();
        for &(e, w) in order.iter() {
            if peeled_mark[e.index()] {
                let nw = w - quantum;
                debug_assert_eq!(nw, g.weight(e), "peel quantum not uniform");
                debug_assert_eq!(nw > 0, g.is_alive(e));
                if nw > 0 {
                    changed.push((e, nw));
                }
            } else {
                kept.push((e, w));
            }
        }
        for &e in peeled.edges() {
            peeled_mark[e.index()] = false;
        }
        // The changed run lost a uniform quantum, so it is still sorted by
        // (weight desc, id asc); merge it back with the untouched run.
        order.clear();
        let (mut a, mut b) = (0usize, 0usize);
        while a < kept.len() && b < changed.len() {
            let (ka, kb) = (kept[a], changed[b]);
            if kb.1 > ka.1 || (kb.1 == ka.1 && kb.0 < ka.0) {
                order.push(kb);
                b += 1;
            } else {
                order.push(ka);
                a += 1;
            }
        }
        order.extend_from_slice(&kept[a..]);
        order.extend_from_slice(&changed[b..]);

        // Survivors of the carried matching stay; dead pairs leave.
        let MatchingEngine {
            match_left,
            match_right,
            via_left,
            ..
        } = self;
        for l in 0..match_left.len() {
            let r = match_left[l];
            if r != NIL && !g.is_alive(via_left[l]) {
                match_left[l] = NIL;
                match_right[r as usize] = NIL;
            }
        }
    }

    /// Bottleneck achieved by the last [`max_min_matching`] call, if any.
    ///
    /// [`max_min_matching`]: MatchingEngine::max_min_matching
    pub fn last_bottleneck(&self) -> Option<Weight> {
        self.last_bottleneck
    }

    fn rebuild_adj(&mut self, g: &Graph) {
        for a in &mut self.adj {
            a.clear();
        }
        for (id, l, r, _) in g.edges() {
            self.adj[l].push((r as u32, id));
        }
    }

    /// The exact augmentation loop of `maximum_matching_seeded`: repeated
    /// Kuhn passes over free left nodes, visited cleared after every
    /// successful augmentation, until a full pass finds nothing.
    fn kuhn_to_maximum(&mut self) {
        let MatchingEngine {
            nl,
            adj,
            match_left,
            match_right,
            via_left,
            visited,
            ..
        } = self;
        loop {
            let mut augmented = false;
            visited.fill(false);
            for l in 0..*nl {
                if match_left[l] != NIL {
                    continue;
                }
                counters::incr(Counter::KuhnAttempts);
                if kuhn_augment(l, adj, match_left, match_right, via_left, visited) {
                    augmented = true;
                    visited.fill(false);
                }
            }
            if !augmented {
                break;
            }
        }
    }

    /// Re-augments the carried witness to a maximum matching of `g` and
    /// returns its cardinality. Dropping dead edges from a maximum matching
    /// and augmenting until no path remains is again maximum (Berge), so
    /// this equals `maximum_matching(g).len()` at a fraction of the work.
    fn witness_target(&mut self, g: &Graph) -> usize {
        self.rebuild_adj(g);
        let MatchingEngine {
            adj,
            match_left,
            match_right,
            via_left,
            dist,
            queue,
            ..
        } = self;
        hk_augment_to_maximum(adj, match_left, match_right, via_left, dist, queue);
        match_left.iter().filter(|&&x| x != NIL).count()
    }

    /// Largest distinct weight `t` such that edges of weight `>= t` admit a
    /// matching of size `target`, found by descending insertion (the paper's
    /// Figure 6 order) with the probe matching carried across insertions.
    /// When `warm` holds, all weights `>= last_bottleneck` are inserted as
    /// one batch first — see the module docs for why that bound is sound.
    fn bottleneck_threshold(&mut self, g: &Graph, target: usize, warm: bool) -> Weight {
        let MatchingEngine {
            order,
            probe_adj,
            probe_left,
            probe_right,
            probe_via,
            dist,
            queue,
            last_bottleneck,
            ..
        } = self;
        for a in probe_adj.iter_mut() {
            a.clear();
        }
        probe_left.fill(NIL);
        probe_right.fill(NIL);
        let size = |probe_left: &[u32]| probe_left.iter().filter(|&&x| x != NIL).count();
        let mut i = 0usize;
        if warm {
            if let Some(bound) = *last_bottleneck {
                while i < order.len() && order[i].1 >= bound {
                    let e = order[i].0;
                    probe_adj[g.left_of(e)].push((g.right_of(e) as u32, e));
                    i += 1;
                }
                if i > 0 {
                    counters::incr(Counter::ThresholdProbes);
                    hk_augment_to_maximum(
                        probe_adj,
                        probe_left,
                        probe_right,
                        probe_via,
                        dist,
                        queue,
                    );
                    if size(probe_left) == target {
                        return order[i - 1].1;
                    }
                }
            }
        }
        while i < order.len() {
            let w = order[i].1;
            while i < order.len() && order[i].1 == w {
                let e = order[i].0;
                probe_adj[g.left_of(e)].push((g.right_of(e) as u32, e));
                i += 1;
            }
            counters::incr(Counter::ThresholdProbes);
            hk_augment_to_maximum(probe_adj, probe_left, probe_right, probe_via, dist, queue);
            if size(probe_left) == target {
                return w;
            }
        }
        unreachable!("inserting every live edge reaches the maximum matching size")
    }

    /// The canonical threshold matching: a from-scratch filtered solve over
    /// edges of weight `>= t`, byte-identical in traversal order to
    /// `maximum_matching_where(g, |e| g.weight(e) >= t)` — only the buffers
    /// are recycled.
    fn canonical_matching(&mut self, g: &Graph, t: Weight) -> Matching {
        let MatchingEngine {
            probe_adj,
            probe_left,
            probe_right,
            probe_via,
            dist,
            queue,
            ..
        } = self;
        for a in probe_adj.iter_mut() {
            a.clear();
        }
        for (id, l, r, w) in g.edges() {
            if w >= t {
                probe_adj[l].push((r as u32, id));
            }
        }
        probe_left.fill(NIL);
        probe_right.fill(NIL);
        hk_augment_to_maximum(probe_adj, probe_left, probe_right, probe_via, dist, queue);
        gather(probe_left, probe_via)
    }
}

fn resize_adj(adj: &mut Vec<Vec<(u32, EdgeId)>>, n: usize) {
    for a in adj.iter_mut() {
        a.clear();
    }
    if adj.len() < n {
        adj.resize_with(n, Vec::new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_graph, GraphParams};
    use crate::{bottleneck, greedy, hopcroft_karp};
    use rand::{rngs::SmallRng, SeedableRng};

    /// Peels `g` to emptiness with `step`, calling `oracle` on the same
    /// residual graph first and asserting exact agreement per peel.
    fn drive<F, O>(mut g: Graph, mut step: F, mut oracle: O)
    where
        F: FnMut(&mut MatchingEngine, &Graph) -> Matching,
        O: FnMut(&Graph, &Matching) -> Matching,
    {
        let mut engine = MatchingEngine::for_graph(&g);
        let mut carried = Matching::new();
        while !g.is_empty() {
            let survivors = Matching::from_edges(
                carried
                    .edges()
                    .iter()
                    .copied()
                    .filter(|&e| g.is_alive(e))
                    .collect(),
            );
            let expect = oracle(&g, &survivors);
            let got = step(&mut engine, &g);
            assert_eq!(got.edges(), expect.edges(), "engine diverged from oracle");
            let quantum = got
                .min_weight(&g)
                .expect("non-empty graph yields a matching");
            for &e in got.edges() {
                g.decrease_weight(e, quantum);
            }
            engine.observe_peel(&g, &got, quantum);
            carried = got;
        }
    }

    fn campaign(seed: u64) -> impl Iterator<Item = Graph> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let params = GraphParams {
            max_nodes_per_side: 8,
            max_edges: 40,
            weight_range: (1, 25),
        };
        (0..60).map(move |_| random_graph(&mut rng, &params))
    }

    #[test]
    fn any_perfect_equals_seeded_oracle_chain() {
        for g in campaign(5) {
            drive(
                g,
                |e, g| e.any_perfect_matching(g),
                hopcroft_karp::maximum_matching_seeded,
            );
        }
    }

    #[test]
    fn greedy_seeded_equals_cold_greedy_per_peel() {
        for g in campaign(6) {
            drive(
                g,
                |e, g| e.greedy_seeded_matching(g),
                |g, _| {
                    let seed = greedy::maximal_matching_heaviest_first(g);
                    hopcroft_karp::maximum_matching_seeded(g, &seed)
                },
            );
        }
    }

    #[test]
    fn max_min_equals_cold_bottleneck_per_peel() {
        for g in campaign(7) {
            drive(
                g,
                |e, g| e.max_min_matching(g),
                |g, _| bottleneck::max_min_matching(g),
            );
        }
    }

    #[test]
    fn engine_reusable_across_runs() {
        let mut engine = MatchingEngine::new();
        let mut rng = SmallRng::seed_from_u64(8);
        let params = GraphParams {
            max_nodes_per_side: 6,
            max_edges: 24,
            weight_range: (1, 12),
        };
        for _ in 0..20 {
            let mut g = random_graph(&mut rng, &params);
            engine.begin(&g);
            while !g.is_empty() {
                let expect = bottleneck::max_min_matching(&g);
                let got = engine.max_min_matching(&g);
                assert_eq!(got.edges(), expect.edges());
                let quantum = got.min_weight(&g).unwrap();
                for &e in got.edges() {
                    g.decrease_weight(e, quantum);
                }
                engine.observe_peel(&g, &got, quantum);
            }
        }
    }

    #[test]
    fn empty_graph_yields_empty_matchings() {
        let g = Graph::new(3, 3);
        let mut engine = MatchingEngine::for_graph(&g);
        assert!(engine.any_perfect_matching(&g).is_empty());
        assert!(engine.max_min_matching(&g).is_empty());
        assert!(engine.greedy_seeded_matching(&g).is_empty());
        assert_eq!(engine.last_bottleneck(), None);
    }

    #[test]
    fn warm_bound_survives_cardinality_changes() {
        // A graph engineered so the maximum cardinality drops between
        // peels: the warm bound must be bypassed, not trusted. Left 1's
        // only edge dies in the first peel, and the surviving heavy edge
        // has a *larger* bottleneck than the first peel's.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 100);
        g.add_edge(1, 1, 1);
        let mut engine = MatchingEngine::for_graph(&g);
        let m1 = engine.max_min_matching(&g);
        assert_eq!(m1.len(), 2);
        assert_eq!(m1.min_weight(&g), Some(1));
        for &e in m1.edges() {
            g.decrease_weight(e, 1);
        }
        engine.observe_peel(&g, &m1, 1);
        let m2 = engine.max_min_matching(&g);
        assert_eq!(m2.len(), 1);
        assert_eq!(m2.min_weight(&g), Some(99));
        assert_eq!(engine.last_bottleneck(), Some(99));
    }
}
