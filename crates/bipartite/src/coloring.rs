//! Bipartite edge colouring (König's theorem): every bipartite multigraph
//! can be properly edge-coloured with exactly `Δ(G)` colours.
//!
//! Each colour class is a matching, so an edge colouring is a decomposition
//! of the graph into `Δ` communication steps — the backbone of the
//! classical block-cyclic redistribution schedulers the paper cites ([3, 9])
//! and of the coloring-based PBS scheduler in the `kpbs` crate.

use crate::graph::{EdgeId, Graph};
use crate::properties;

/// A proper edge colouring: `color[e] < num_colors` for every live edge,
/// and no two same-coloured edges share an endpoint.
#[derive(Debug, Clone)]
pub struct EdgeColoring {
    /// Colour of each edge, indexed by edge id (dead edges hold `usize::MAX`).
    pub color: Vec<usize>,
    /// Number of colours used (= `Δ(G)` for the König algorithm).
    pub num_colors: usize,
}

impl EdgeColoring {
    /// The edges of one colour class (a matching).
    pub fn class(&self, g: &Graph, c: usize) -> Vec<EdgeId> {
        g.edge_ids()
            .filter(|e| self.color[e.index()] == c)
            .collect()
    }

    /// Verifies properness against `g`.
    pub fn is_proper(&self, g: &Graph) -> bool {
        for c in 0..self.num_colors {
            let mut lu = vec![false; g.left_count()];
            let mut ru = vec![false; g.right_count()];
            for e in self.class(g, c) {
                let (l, r) = (g.left_of(e), g.right_of(e));
                if lu[l] || ru[r] {
                    return false;
                }
                lu[l] = true;
                ru[r] = true;
            }
        }
        g.edge_ids()
            .all(|e| self.color[e.index()] < self.num_colors)
    }
}

const NONE: usize = usize::MAX;

/// Colours the live edges of `g` with exactly `Δ(G)` colours by König's
/// alternating-path argument: insert edges one at a time; when the smallest
/// free colours at the two endpoints differ, flip the alternating
/// (a, b)-path from one endpoint to free a common colour. `O(m · n)`.
///
/// ```
/// use bipartite::{Graph, coloring};
///
/// let mut g = Graph::new(2, 2);
/// for l in 0..2 { for r in 0..2 { g.add_edge(l, r, 1); } }
/// let c = coloring::konig_coloring(&g);
/// assert_eq!(c.num_colors, 2); // Δ(K_{2,2}) = 2
/// assert!(c.is_proper(&g));
/// ```
pub fn konig_coloring(g: &Graph) -> EdgeColoring {
    let delta = properties::max_degree(g);
    let max_id = g.edge_ids().map(|e| e.index() + 1).max().unwrap_or(0);
    let mut color = vec![NONE; max_id];
    if delta == 0 {
        return EdgeColoring {
            color,
            num_colors: 0,
        };
    }
    // at_left[u][c] / at_right[v][c]: the edge coloured c at that node.
    let mut at_left = vec![vec![NONE; delta]; g.left_count()];
    let mut at_right = vec![vec![NONE; delta]; g.right_count()];

    for e in g.edge_ids() {
        let (u, v) = (g.left_of(e), g.right_of(e));
        // A colour free at both endpoints: assign directly.
        if let Some(c) = (0..delta).find(|&c| at_left[u][c] == NONE && at_right[v][c] == NONE) {
            color[e.index()] = c;
            at_left[u][c] = e.index();
            at_right[v][c] = e.index();
            continue;
        }
        // Otherwise pick a free at u (hence used at v) and b free at v
        // (hence used at u), and flip the a/b-alternating path starting at
        // v: it cannot reach u (it enters nodes via one of {a, b} and leaves
        // via the other; u lacks a and the path would have to enter it with
        // a), so after the swap colour a is free at both endpoints.
        let a = (0..delta)
            .find(|&c| at_left[u][c] == NONE)
            .expect("degree bound guarantees a free colour at u");
        let b = (0..delta)
            .find(|&c| at_right[v][c] == NONE)
            .expect("degree bound guarantees a free colour at v");
        // Phase 1: collect the path edges.
        let mut path: Vec<usize> = Vec::new();
        let (mut node, mut side_right, mut want) = (v, true, a);
        loop {
            let slot = if side_right {
                at_right[node][want]
            } else {
                at_left[node][want]
            };
            if slot == NONE {
                break;
            }
            path.push(slot);
            let pe = EdgeId(slot as u32);
            node = if side_right {
                g.left_of(pe)
            } else {
                g.right_of(pe)
            };
            side_right = !side_right;
            want = if want == a { b } else { a };
        }
        // Phase 2: swap a <-> b along the path (clear all, then reinstall,
        // so transient clashes cannot corrupt the tables).
        for &pi in &path {
            let pe = EdgeId(pi as u32);
            let old = color[pi];
            at_left[g.left_of(pe)][old] = NONE;
            at_right[g.right_of(pe)][old] = NONE;
            color[pi] = if old == a { b } else { a };
        }
        for &pi in &path {
            let pe = EdgeId(pi as u32);
            let c = color[pi];
            debug_assert_eq!(at_left[g.left_of(pe)][c], NONE);
            debug_assert_eq!(at_right[g.right_of(pe)][c], NONE);
            at_left[g.left_of(pe)][c] = pi;
            at_right[g.right_of(pe)][c] = pi;
        }
        debug_assert_eq!(at_left[u][a], NONE);
        debug_assert_eq!(at_right[v][a], NONE);
        color[e.index()] = a;
        at_left[u][a] = e.index();
        at_right[v][a] = e.index();
    }

    EdgeColoring {
        color,
        num_colors: delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, 3);
        let c = konig_coloring(&g);
        assert_eq!(c.num_colors, 0);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn single_edge() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 5);
        let c = konig_coloring(&g);
        assert_eq!(c.num_colors, 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn star_needs_degree_colors() {
        let mut g = Graph::new(1, 5);
        for r in 0..5 {
            g.add_edge(0, r, 1);
        }
        let c = konig_coloring(&g);
        assert_eq!(c.num_colors, 5);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn complete_bipartite() {
        let n = 6;
        let mut g = Graph::new(n, n);
        for l in 0..n {
            for r in 0..n {
                g.add_edge(l, r, 1);
            }
        }
        let c = konig_coloring(&g);
        assert_eq!(c.num_colors, n, "K_{n},{n} is n-edge-chromatic");
        assert!(c.is_proper(&g));
        // Every class is a perfect matching.
        for cls in 0..n {
            assert_eq!(c.class(&g, cls).len(), n);
        }
    }

    #[test]
    fn multigraph_parallel_edges() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 1, 1);
        // Δ = 3 (left 0).
        let c = konig_coloring(&g);
        assert_eq!(c.num_colors, 3);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn path_forcing_alternating_flips() {
        // A path graph coloured greedily in a bad order exercises the
        // alternating-path machinery.
        let n = 10;
        let mut g = Graph::new(n, n);
        for i in 0..n {
            g.add_edge(i, i, 1);
            if i + 1 < n {
                g.add_edge(i + 1, i, 1);
            }
        }
        let c = konig_coloring(&g);
        assert_eq!(c.num_colors, 2);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn random_multigraphs_proper_with_delta_colors() {
        let mut rng = SmallRng::seed_from_u64(404);
        for _ in 0..300 {
            let nl = rng.gen_range(1..10);
            let nr = rng.gen_range(1..10);
            let m = rng.gen_range(1..40);
            let mut g = Graph::new(nl, nr);
            for _ in 0..m {
                g.add_edge(rng.gen_range(0..nl), rng.gen_range(0..nr), 1);
            }
            let c = konig_coloring(&g);
            assert_eq!(
                c.num_colors,
                properties::max_degree(&g),
                "König uses exactly Δ colours"
            );
            assert!(c.is_proper(&g), "colouring must be proper");
        }
    }

    #[test]
    fn dead_edges_ignored() {
        let mut g = Graph::new(2, 2);
        let e = g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 1);
        g.remove_edge(e);
        let c = konig_coloring(&g);
        assert_eq!(c.num_colors, 1);
        assert!(c.is_proper(&g));
    }
}
