//! Weighted bipartite graphs and matchings for redistribution scheduling.
//!
//! This crate is the graph substrate of the K-PBS suite (the paper's
//! "bipartite graphs library we developed"). It provides:
//!
//! * [`Graph`] — a mutable weighted bipartite multigraph with integer edge
//!   weights ("ticks"), tuned for the peeling loops of the GGP/OGGP
//!   schedulers (edges are removed as their weight reaches zero),
//! * [`matching`] — matching representation and validation,
//! * [`hopcroft_karp`] — `O(m·sqrt(n))` maximum-cardinality matching,
//! * [`bottleneck`] — maximal matchings that maximise their minimum edge
//!   weight (Figure 6 of the paper), both the paper's incremental algorithm
//!   and a faster threshold binary search,
//! * [`greedy`] — greedy maximal matching used by baseline schedulers,
//! * [`engine`] — the incremental peeling engine: matching state and
//!   scratch buffers reused across the peels of one WRGP run,
//! * [`generate`] — seeded random graph generators used by the simulation
//!   campaigns (Figures 7–9),
//! * [`partition`] — cheap affinity-based block partitioning, the
//!   relabeling pre-pass of the hierarchical planner,
//! * [`properties`] — `P(G)`, `W(G)`, `Δ(G)` and weight-regularity checks,
//! * [`dot`] — Graphviz export for debugging and examples.
//!
//! # Example
//!
//! ```
//! use bipartite::{Graph, hopcroft_karp};
//!
//! let mut g = Graph::new(2, 2);
//! g.add_edge(0, 0, 5);
//! g.add_edge(0, 1, 3);
//! g.add_edge(1, 1, 4);
//! let m = hopcroft_karp::maximum_matching(&g);
//! assert_eq!(m.len(), 2); // perfect
//! ```

#![warn(missing_docs)]

pub mod bottleneck;
pub mod coloring;
pub mod csr;
pub mod dot;
pub mod engine;
pub mod generate;
pub mod graph;
pub mod greedy;
pub mod hopcroft_karp;
pub mod matching;
pub mod partition;
pub mod properties;

pub use csr::{CsrAdj, SearchState};
pub use engine::MatchingEngine;
pub use graph::{EdgeId, Graph, Side, Weight};
pub use matching::Matching;
pub use partition::{partition_affinity, Bipartition};

#[cfg(test)]
pub(crate) mod testutil {
    /// Work counters are process-global; tests that toggle or diff them
    /// must not overlap (mirrors the lock in the telemetry crate's tests).
    pub static COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
