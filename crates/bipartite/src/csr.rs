//! Flat CSR adjacency and epoch-stamped search scratch: the memory layout
//! of every matching hot path in this crate.
//!
//! # Why CSR
//!
//! The matching routines used to carry a `Vec<Vec<(u32, EdgeId)>>` — one
//! heap allocation per left node, rebuilt from the graph on every call.
//! [`CsrAdj`] replaces that with three flat vectors:
//!
//! ```text
//! offsets: [0,      3,   5,         9]      row capacities (prefix sums)
//! len:     [  2,      2,    3        ]      live entries per row
//! targets: [a b _ | c d | e f g _   ]       (right node, edge id) pairs
//!           row 0   row 1  row 2
//! ```
//!
//! `offsets` fixes each row's *capacity* from the degrees at build time;
//! `len` tracks how many slots are live. Rows only ever shrink between
//! rebuilds (WRGP peeling removes edges, never adds them), so the layout
//! built once per peeling run serves every peel: removal is an
//! order-preserving shift within the row ([`CsrAdj::remove`]), re-adding
//! for threshold probes is an O(1) [`CsrAdj::push`]. One contiguous block
//! means one allocation amortised across the run and linear scans that
//! prefetch, where the nested layout chased a pointer per row.
//!
//! # Why epoch stamps
//!
//! BFS/DFS searches need per-node `visited`/`dist` state that resets
//! between searches. Clearing an array is O(n) per search — measurable when
//! a peel does hundreds of tiny augmentations. [`SearchState`] instead
//! stamps each write with the current epoch: a slot is "set" only if its
//! stamp equals the current epoch, and [`SearchState::next_epoch`] resets
//! everything in O(1) by bumping the epoch. The arrays are physically
//! cleared only when the 32-bit epoch wraps (counted as
//! [`Counter::EpochResets`] — in practice never), so after warm-up a peel
//! loop performs **zero allocations and zero full-array clears**.
//!
//! Invariants:
//!
//! * `stamp[i] == epoch` ⟺ slot `i` was written during the current search;
//!   `dist(i)` reads as `INF` and `visited(i)` as `false` otherwise.
//! * `epoch` strictly increases across [`SearchState::next_epoch`] calls,
//!   so stale stamps from any earlier search (or earlier engine run) can
//!   never alias the current epoch. New slots from a resize are stamped 0,
//!   which is never current (`next_epoch` is called before every search).

use crate::graph::{EdgeId, Graph};
use std::collections::VecDeque;
use telemetry::counters::{self, Counter};

pub(crate) const NIL: u32 = u32::MAX;
pub(crate) const INF: u32 = u32::MAX;

/// Flat compressed-sparse-row adjacency over the left side of a bipartite
/// graph: row `l` holds `(right node, edge id)` pairs for left node `l`.
///
/// Built with [`build`](CsrAdj::build)/[`build_where`](CsrAdj::build_where)
/// (each counted as one [`Counter::AdjRebuilds`]) and then maintained in
/// place: [`remove`](CsrAdj::remove) for dying edges,
/// [`push`](CsrAdj::push)/[`clear_rows`](CsrAdj::clear_rows) for probe
/// subsets sharing the same row layout via
/// [`clone_layout`](CsrAdj::clone_layout).
#[derive(Debug, Clone, Default)]
pub struct CsrAdj {
    /// Row capacity layout: row `l` owns `targets[offsets[l]..offsets[l+1]]`.
    offsets: Vec<u32>,
    /// Live entries per row (`len[l] <= offsets[l+1] - offsets[l]`).
    len: Vec<u32>,
    /// Flat `(right node, edge id)` storage for all rows.
    targets: Vec<(u32, EdgeId)>,
}

impl CsrAdj {
    /// An empty adjacency; size it with a `build*` or `clone_layout` call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows (left nodes) the current layout covers.
    pub fn rows(&self) -> usize {
        self.len.len()
    }

    /// Rebuilds from every live edge of `g`: row `l` lists the edges of
    /// left node `l` in ascending edge-id order (the iteration order of
    /// [`Graph::edges`]). O(n + m); counts one [`Counter::AdjRebuilds`].
    pub fn build(&mut self, g: &Graph) {
        self.build_where(g, |_| true);
    }

    /// Like [`build`](CsrAdj::build), but keeps only edges satisfying
    /// `keep`. Row capacities still cover the *full* live degree, so edges
    /// filtered out now can be [`push`](CsrAdj::push)ed later without
    /// reallocation.
    pub fn build_where<F: FnMut(EdgeId) -> bool>(&mut self, g: &Graph, mut keep: F) {
        counters::incr(Counter::AdjRebuilds);
        let nl = g.left_count();
        self.offsets.clear();
        self.offsets.reserve(nl + 1);
        let mut acc = 0u32;
        self.offsets.push(0);
        for l in 0..nl {
            acc += g.degree_left(l) as u32;
            self.offsets.push(acc);
        }
        self.len.clear();
        self.len.resize(nl, 0);
        self.targets.clear();
        self.targets.resize(acc as usize, (0, EdgeId(0)));
        for (id, l, r, _) in g.edges() {
            if keep(id) {
                let slot = self.offsets[l] + self.len[l];
                self.targets[slot as usize] = (r as u32, id);
                self.len[l] += 1;
            }
        }
    }

    /// Sizes an empty *transposed* layout from `g`: one row per **right**
    /// node, with capacity for its full live degree. Rows are left empty —
    /// content arrives by [`push`](CsrAdj::push)ing `(left node, edge id)`
    /// pairs. Like [`clone_layout`](CsrAdj::clone_layout) this is layout
    /// bookkeeping, not a counted rebuild.
    pub fn build_transposed_layout(&mut self, g: &Graph) {
        let nr = g.right_count();
        self.offsets.clear();
        self.offsets.reserve(nr + 1);
        let mut acc = 0u32;
        self.offsets.push(0);
        for r in 0..nr {
            acc += g.degree_right(r) as u32;
            self.offsets.push(acc);
        }
        self.len.clear();
        self.len.resize(nr, 0);
        self.targets.clear();
        self.targets.resize(acc as usize, (0, EdgeId(0)));
    }

    /// Adopts `other`'s row layout (offsets and capacity) with every row
    /// empty. Does *not* count as a rebuild: no graph scan happens, and the
    /// probe adjacencies using this share the one layout built per run.
    pub fn clone_layout(&mut self, other: &CsrAdj) {
        self.offsets.clear();
        self.offsets.extend_from_slice(&other.offsets);
        self.len.clear();
        self.len.resize(other.len.len(), 0);
        self.targets.clear();
        self.targets.resize(other.targets.len(), (0, EdgeId(0)));
    }

    /// The live entries of row `l`, in the order they were inserted.
    #[inline]
    pub fn row(&self, l: usize) -> &[(u32, EdgeId)] {
        let start = self.offsets[l] as usize;
        &self.targets[start..start + self.len[l] as usize]
    }

    /// Empties every row in O(rows), keeping the layout.
    pub fn clear_rows(&mut self) {
        self.len.fill(0);
    }

    /// Appends `(r, e)` to row `l` in O(1).
    ///
    /// # Panics
    ///
    /// Debug-panics if the row's fixed capacity is exceeded (cannot happen
    /// for edge subsets of the graph the layout was built from).
    #[inline]
    pub fn push(&mut self, l: usize, r: u32, e: EdgeId) {
        let slot = self.offsets[l] + self.len[l];
        debug_assert!(
            slot < self.offsets[l + 1],
            "row {l} exceeds its fixed capacity"
        );
        self.targets[slot as usize] = (r, e);
        self.len[l] += 1;
    }

    /// Inserts `(r, e)` into row `l` at the position keeping the row sorted
    /// by ascending edge id — the order [`build`](CsrAdj::build) produces —
    /// in O(row length). Rows maintained only by this, [`remove`] and
    /// [`clear_rows`] therefore always look like a fresh `build_where` of
    /// their content, which is what lets the engine's probe adjacency serve
    /// as the canonical filtered adjacency without any rebuild.
    ///
    /// [`remove`]: CsrAdj::remove
    /// [`clear_rows`]: CsrAdj::clear_rows
    ///
    /// # Panics
    ///
    /// Debug-panics if the row's fixed capacity is exceeded.
    pub fn insert_by_id(&mut self, l: usize, r: u32, e: EdgeId) {
        let start = self.offsets[l] as usize;
        let n = self.len[l] as usize;
        debug_assert!(
            self.offsets[l] + self.len[l] < self.offsets[l + 1],
            "row {l} exceeds its fixed capacity"
        );
        let row = &mut self.targets[start..start + n + 1];
        let pos = row[..n].partition_point(|&(_, id)| id < e);
        row.copy_within(pos..n, pos + 1);
        row[pos] = (r, e);
        self.len[l] += 1;
    }

    /// Removes edge `e` from row `l`, preserving the order of the remaining
    /// entries (so traversal order stays the ascending-id build order).
    /// O(row length); no-op if `e` is not present.
    pub fn remove(&mut self, l: usize, e: EdgeId) {
        let start = self.offsets[l] as usize;
        let n = self.len[l] as usize;
        let row = &mut self.targets[start..start + n];
        if let Some(pos) = row.iter().position(|&(_, id)| id == e) {
            row.copy_within(pos + 1.., pos);
            self.len[l] -= 1;
        }
    }

    /// Total live entries across all rows. O(rows); used by debug
    /// assertions checking the adjacency tracks the graph.
    pub fn live_entries(&self) -> usize {
        self.len.iter().map(|&n| n as usize).sum()
    }

    /// Saves the live length of every row into `out` (cleared first).
    /// Together with [`restore_lens`](CsrAdj::restore_lens) this checkpoints
    /// the adjacency in O(rows): as long as rows only *grow* (by
    /// [`push`](CsrAdj::push)) after the save, truncating them back restores
    /// the exact previous contents — pushes append past the saved length and
    /// never overwrite a saved slot.
    pub fn save_lens(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.len);
    }

    /// Rewinds every row to a length saved by [`save_lens`](CsrAdj::save_lens).
    /// Only valid if rows have not shrunk below the saved lengths since.
    pub fn restore_lens(&mut self, saved: &[u32]) {
        debug_assert_eq!(saved.len(), self.len.len());
        debug_assert!(
            saved.iter().zip(&self.len).all(|(&s, &n)| s <= n),
            "rows shrank since the checkpoint; contents are gone"
        );
        self.len.copy_from_slice(saved);
    }
}

/// Epoch-stamped BFS/DFS scratch shared by every search in this crate:
/// `visited` marks for Kuhn augmentation and BFS layers (`dist`) for
/// Hopcroft–Karp, plus the BFS queue. See the module docs for the stamp
/// invariants.
#[derive(Debug, Clone, Default)]
pub struct SearchState {
    stamp: Vec<u32>,
    dist: Vec<u32>,
    epoch: u32,
    pub(crate) queue: VecDeque<u32>,
}

impl SearchState {
    /// An empty state; [`prepare`](SearchState::prepare) sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures capacity for `n` nodes and opens a fresh epoch. Grown slots
    /// are stamped 0, which is never the current epoch, so they read as
    /// unvisited without any clearing.
    pub fn prepare(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
        }
        self.next_epoch();
    }

    /// Invalidates every mark in O(1) by opening a new epoch. On the (once
    /// per ~4 billion searches) 32-bit wrap the stamp array is physically
    /// cleared, counted as [`Counter::EpochResets`].
    #[inline]
    pub fn next_epoch(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                counters::incr(Counter::EpochResets);
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Marks `l` visited; returns `false` if it already was this epoch.
    #[inline]
    pub fn try_visit(&mut self, l: usize) -> bool {
        if self.stamp[l] == self.epoch {
            false
        } else {
            self.stamp[l] = self.epoch;
            true
        }
    }

    /// BFS layer of `l`, or `INF` when unset this epoch.
    #[inline]
    pub fn dist(&self, l: usize) -> u32 {
        if self.stamp[l] == self.epoch {
            self.dist[l]
        } else {
            INF
        }
    }

    /// Sets the BFS layer of `l` (stamping it into the current epoch).
    /// Storing `INF` marks the node dead for the rest of this epoch's DFS,
    /// exactly like the dense-array algorithm's `dist[l] = INF`.
    #[inline]
    pub fn set_dist(&mut self, l: usize, d: u32) {
        self.stamp[l] = self.epoch;
        self.dist[l] = d;
    }

    /// Forces the epoch counter (test hook for exercising wrap-around).
    #[cfg(test)]
    pub(crate) fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder() -> Graph {
        // left 0: edges to right 0,1; left 1: none; left 2: edges to 1,2.
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 2);
        g.add_edge(2, 1, 3);
        g.add_edge(2, 2, 4);
        g
    }

    #[test]
    fn build_matches_graph_rows_in_id_order() {
        let g = ladder();
        let mut adj = CsrAdj::new();
        adj.build(&g);
        assert_eq!(adj.rows(), 3);
        assert_eq!(adj.live_entries(), 4);
        assert_eq!(adj.row(0), &[(0, EdgeId(0)), (1, EdgeId(1))]);
        assert_eq!(adj.row(1), &[]);
        assert_eq!(adj.row(2), &[(1, EdgeId(2)), (2, EdgeId(3))]);
    }

    #[test]
    fn build_where_keeps_full_capacity() {
        let g = ladder();
        let mut adj = CsrAdj::new();
        adj.build_where(&g, |e| g.weight(e) >= 3);
        assert_eq!(adj.row(0), &[]);
        assert_eq!(adj.row(2), &[(1, EdgeId(2)), (2, EdgeId(3))]);
        // Rows filtered at build time still accept their full degree.
        adj.push(0, 0, EdgeId(0));
        adj.push(0, 1, EdgeId(1));
        assert_eq!(adj.row(0), &[(0, EdgeId(0)), (1, EdgeId(1))]);
    }

    #[test]
    fn remove_preserves_order() {
        let g = ladder();
        let mut adj = CsrAdj::new();
        adj.build(&g);
        adj.remove(2, EdgeId(2));
        assert_eq!(adj.row(2), &[(2, EdgeId(3))]);
        adj.remove(2, EdgeId(2)); // absent: no-op
        assert_eq!(adj.row(2), &[(2, EdgeId(3))]);
        assert_eq!(adj.live_entries(), 3);
    }

    #[test]
    fn clone_layout_shares_capacity_not_content() {
        let g = ladder();
        let mut adj = CsrAdj::new();
        adj.build(&g);
        let mut probe = CsrAdj::new();
        probe.clone_layout(&adj);
        assert_eq!(probe.rows(), 3);
        assert_eq!(probe.live_entries(), 0);
        probe.push(2, 2, EdgeId(3));
        probe.push(2, 1, EdgeId(2));
        // Insertion order, not id order: probes push heaviest first.
        assert_eq!(probe.row(2), &[(2, EdgeId(3)), (1, EdgeId(2))]);
        probe.clear_rows();
        assert_eq!(probe.live_entries(), 0);
    }

    #[test]
    fn insert_by_id_restores_build_order() {
        let g = ladder();
        let mut adj = CsrAdj::new();
        adj.build(&g);
        let mut probe = CsrAdj::new();
        probe.clone_layout(&adj);
        // Inserted heaviest-first (ids 3, 2), stored ascending by id.
        probe.insert_by_id(2, 2, EdgeId(3));
        probe.insert_by_id(2, 1, EdgeId(2));
        assert_eq!(probe.row(2), adj.row(2));
        probe.remove(2, EdgeId(2));
        probe.insert_by_id(2, 1, EdgeId(2));
        assert_eq!(probe.row(2), adj.row(2));
    }

    #[test]
    fn save_restore_lens_rewinds_pushes() {
        let g = ladder();
        let mut adj = CsrAdj::new();
        adj.build_where(&g, |e| g.weight(e) >= 4); // row 2: only edge 3
        let mut saved = Vec::new();
        adj.save_lens(&mut saved);
        adj.push(0, 0, EdgeId(0));
        adj.push(2, 1, EdgeId(2));
        assert_eq!(adj.live_entries(), 3);
        adj.restore_lens(&saved);
        assert_eq!(adj.row(0), &[]);
        assert_eq!(adj.row(2), &[(2, EdgeId(3))]);
        // Re-pushing after a rewind overwrites the rewound slots.
        adj.push(2, 1, EdgeId(2));
        assert_eq!(adj.row(2), &[(2, EdgeId(3)), (1, EdgeId(2))]);
    }

    #[test]
    fn epoch_bump_invalidates_marks_without_clearing() {
        let mut s = SearchState::new();
        s.prepare(4);
        assert!(s.try_visit(1));
        assert!(!s.try_visit(1));
        s.set_dist(2, 7);
        assert_eq!(s.dist(2), 7);
        assert_eq!(s.dist(3), INF);
        s.next_epoch();
        assert_eq!(s.dist(2), INF);
        assert!(s.try_visit(1));
    }

    #[test]
    fn prepare_grows_without_stale_marks() {
        let mut s = SearchState::new();
        s.prepare(2);
        assert!(s.try_visit(0));
        s.prepare(5);
        // New epoch: old marks gone, new slots unvisited.
        for l in 0..5 {
            assert!(s.try_visit(l), "slot {l} must start unvisited");
        }
    }

    #[test]
    fn epoch_wrap_clears_and_counts() {
        use telemetry::counters::{self, Counter};
        let _g = crate::testutil::COUNTER_LOCK.lock().unwrap();
        let mut s = SearchState::new();
        s.prepare(3);
        s.try_visit(0);
        s.force_epoch(u32::MAX);
        s.try_visit(1); // stamped u32::MAX
        counters::enable();
        let before = counters::local_snapshot();
        s.next_epoch(); // wraps: full clear, epoch back to 1
        let delta = counters::local_snapshot().delta(&before);
        counters::disable();
        assert_eq!(delta.get(Counter::EpochResets), 1);
        // Every slot is unvisited again, including the one stamped MAX.
        for l in 0..3 {
            assert!(s.try_visit(l));
        }
    }
}
