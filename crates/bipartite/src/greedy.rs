//! Greedy maximal matchings, used by baseline schedulers.

use crate::graph::{EdgeId, Graph};
use crate::matching::Matching;

/// Greedy maximal matching scanning edges in id order. Not maximum in
/// general, but maximal: no further edge can be added.
pub fn maximal_matching(g: &Graph) -> Matching {
    greedy_by(g, |ids| ids)
}

/// Greedy maximal matching scanning edges by decreasing weight, so heavy
/// communications are placed first (a common list-scheduling heuristic).
pub fn maximal_matching_heaviest_first(g: &Graph) -> Matching {
    greedy_by(g, |mut ids| {
        ids.sort_unstable_by(|&a, &b| g.weight(b).cmp(&g.weight(a)).then(a.cmp(&b)));
        ids
    })
}

fn greedy_by<F: FnOnce(Vec<EdgeId>) -> Vec<EdgeId>>(g: &Graph, order: F) -> Matching {
    let ids = order(g.edge_ids().collect());
    let mut left_used = vec![false; g.left_count()];
    let mut right_used = vec![false; g.right_count()];
    let mut m = Matching::new();
    for e in ids {
        let (l, r) = (g.left_of(e), g.right_of(e));
        if !left_used[l] && !right_used[r] {
            left_used[l] = true;
            right_used[r] = true;
            m.push(e);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_is_maximal_and_valid() {
        let mut g = Graph::new(3, 3);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 9);
        g.add_edge(1, 0, 9);
        g.add_edge(2, 2, 5);
        let m = maximal_matching(&g);
        assert!(m.is_valid(&g));
        assert!(m.is_maximal(&g));
    }

    #[test]
    fn heaviest_first_picks_heavy_edges() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 9);
        g.add_edge(1, 0, 8);
        let m = maximal_matching_heaviest_first(&g);
        assert_eq!(m.len(), 2);
        assert_eq!(m.min_weight(&g), Some(8));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(2, 2);
        assert!(maximal_matching(&g).is_empty());
        assert!(maximal_matching_heaviest_first(&g).is_empty());
    }

    #[test]
    fn greedy_can_be_half_of_maximum_but_never_less() {
        // Classic 2-approximation structure for maximal matchings.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 1); // picked first by id order
        g.add_edge(1, 0, 1);
        g.add_edge(0, 1, 1);
        let m = maximal_matching(&g);
        assert!(!m.is_empty());
        assert!(m.is_maximal(&g));
    }
}
