//! Block partitioning of a bipartite graph — the relabeling pre-pass of
//! hierarchical scheduling.
//!
//! The hierarchical planner (`kpbs::hier`) works on a `b × b` *block matrix*
//! view of the instance: left nodes are grouped into `b` sender blocks,
//! right nodes into `b` receiver blocks, and the planner schedules block
//! pairs coarsely before descending into each pair. The quality of the
//! hierarchy is decided here: the more traffic the partition captures
//! *inside* heavy block pairs (rather than smearing it across many light
//! ones), the closer the composed schedule gets to the flat one. This is
//! the COSTA observation — relabel processes so the traffic structure and
//! the topology structure line up — applied at the block level.
//!
//! The pass is deliberately cheap and deterministic: a balanced contiguous
//! seeding followed by a fixed number of alternating *affinity sweeps*.
//! Each sweep reassigns the nodes of one side to the block of the opposite
//! side they exchange the most traffic with, under a balance cap of
//! `⌈n/b⌉` nodes per block, processing heavy nodes first (a greedy
//! capacity-constrained `b`-matching — the same greedy discipline as the
//! crate's matching seeders, on cluster granularity). Cost per sweep is
//! `O(m + n·b)`; no quadratic structure is ever materialised.

use crate::graph::{Graph, Weight};
use telemetry::counters::{self, Counter};

/// A block partition of a bipartite graph: every left node and every right
/// node is assigned to one of `blocks` blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bipartition {
    /// Number of blocks `b` on each side.
    pub blocks: usize,
    /// Block of each left node (`left_block[l] < blocks`).
    pub left_block: Vec<usize>,
    /// Block of each right node (`right_block[r] < blocks`).
    pub right_block: Vec<usize>,
}

impl Bipartition {
    /// Total weight of edges whose endpoints fall in block pair
    /// `(left_block, right_block)` with equal indices — the "diagonal"
    /// traffic a relabeling-style optimizer would maximise. Provided for
    /// diagnostics; the hierarchical planner schedules *all* block pairs.
    pub fn diagonal_weight(&self, g: &Graph) -> Weight {
        g.edges()
            .filter(|&(_, l, r, _)| self.left_block[l] == self.right_block[r])
            .map(|(_, _, _, w)| w)
            .sum()
    }

    /// Total weight per block pair, as a dense `blocks × blocks` row-major
    /// vector (`pair_weight[a * blocks + b]` = traffic from left block `a`
    /// to right block `b`). `O(m + b²)`.
    pub fn pair_weights(&self, g: &Graph) -> Vec<Weight> {
        let b = self.blocks;
        let mut out = vec![0; b * b];
        for (_, l, r, w) in g.edges() {
            out[self.left_block[l] * b + self.right_block[r]] += w;
        }
        out
    }
}

/// Balanced contiguous seeding: node `i` goes to block `i·b / n`. With
/// `b = 1` everything lands in block 0.
fn seed_contiguous(n: usize, b: usize) -> Vec<usize> {
    (0..n).map(|i| i * b / n.max(1)).collect()
}

/// One affinity sweep: reassigns the `n` nodes described by `affinity` to
/// blocks, heaviest node first, each to its highest-affinity block that
/// still has room (capacity `⌈n/b⌉`), ties to the lower block index.
/// `affinity` is row-major `n × b`; returns the new assignment.
fn assign_by_affinity(n: usize, b: usize, affinity: &[Weight]) -> Vec<usize> {
    let cap = n.div_ceil(b);
    let mut order: Vec<usize> = (0..n).collect();
    // Heaviest total traffic first: those nodes have the most to lose from
    // a bad block. Sort is stable, so equal-weight nodes keep index order.
    let totals: Vec<Weight> = (0..n)
        .map(|i| affinity[i * b..(i + 1) * b].iter().sum())
        .collect();
    order.sort_by_key(|&i| std::cmp::Reverse(totals[i]));

    let mut load = vec![0usize; b];
    let mut assignment = vec![0usize; n];
    for &i in &order {
        let row = &affinity[i * b..(i + 1) * b];
        let mut best: Option<usize> = None;
        for (blk, &aff) in row.iter().enumerate() {
            if load[blk] >= cap {
                continue;
            }
            match best {
                Some(cur) if row[cur] >= aff => {}
                _ => best = Some(blk),
            }
        }
        // Capacity ⌈n/b⌉ over b blocks always covers n nodes, so a block
        // with room exists; the unwrap_or is defensive only.
        let blk = best.unwrap_or(0);
        assignment[i] = blk;
        load[blk] += 1;
        counters::incr(Counter::HierPartitionAssigns);
    }
    assignment
}

/// Partitions `g` into `blocks` blocks per side by affinity clustering.
///
/// Left nodes are seeded into balanced contiguous blocks, then `sweeps`
/// alternating refinement passes run: right nodes are reassigned to the
/// left block they exchange the most traffic with (balance-capped), then
/// left nodes to the right blocks likewise. `sweeps = 0` keeps the
/// contiguous seeding on both sides. The result is deterministic for a
/// given graph.
///
/// `blocks` is clamped to `max(1, min(blocks, n1, n2))`: more blocks than
/// nodes on a side would leave empty blocks with no schedulable traffic.
pub fn partition_affinity(g: &Graph, blocks: usize, sweeps: usize) -> Bipartition {
    let (n1, n2) = (g.left_count(), g.right_count());
    let b = blocks.max(1).min(n1.max(1)).min(n2.max(1));
    let mut left_block = seed_contiguous(n1, b);
    let mut right_block = seed_contiguous(n2, b);
    if b == 1 {
        return Bipartition {
            blocks: b,
            left_block,
            right_block,
        };
    }
    counters::add(Counter::HierPartitionAssigns, (n1 + n2) as u64);

    let mut affinity: Vec<Weight> = Vec::new();
    for _ in 0..sweeps {
        // Right nodes follow the left blocks...
        affinity.clear();
        affinity.resize(n2 * b, 0);
        for (_, l, r, w) in g.edges() {
            affinity[r * b + left_block[l]] += w;
        }
        right_block = assign_by_affinity(n2, b, &affinity);
        // ...then left nodes follow the (updated) right blocks.
        affinity.clear();
        affinity.resize(n1 * b, 0);
        for (_, l, r, w) in g.edges() {
            affinity[l * b + right_block[r]] += w;
        }
        left_block = assign_by_affinity(n1, b, &affinity);
    }
    Bipartition {
        blocks: b,
        left_block,
        right_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A block-diagonal graph under a label permutation: `b` clusters of
    /// `per` nodes each, cluster `c`'s senders talking only to cluster
    /// `c`'s receivers, with right labels rotated so contiguous seeding
    /// alone cannot find the structure.
    fn permuted_clusters(b: usize, per: usize) -> Graph {
        let n = b * per;
        let mut g = Graph::new(n, n);
        for c in 0..b {
            for i in 0..per {
                for j in 0..per {
                    let l = c * per + i;
                    // Rotate right clusters by half the node count.
                    let r = ((c * per + j) + n / 2) % n;
                    g.add_edge(l, r, 10);
                }
            }
        }
        g
    }

    #[test]
    fn contiguous_seed_is_balanced() {
        let s = seed_contiguous(10, 3);
        assert_eq!(s.len(), 10);
        for blk in 0..3 {
            let count = s.iter().filter(|&&x| x == blk).count();
            assert!((3..=4).contains(&count), "block {blk} holds {count}");
        }
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "monotone: {s:?}");
    }

    #[test]
    fn single_block_trivial() {
        let mut g = Graph::new(3, 4);
        g.add_edge(0, 0, 5);
        let p = partition_affinity(&g, 1, 2);
        assert_eq!(p.blocks, 1);
        assert!(p.left_block.iter().all(|&b| b == 0));
        assert!(p.right_block.iter().all(|&b| b == 0));
        assert_eq!(p.diagonal_weight(&g), 5);
    }

    #[test]
    fn blocks_clamped_to_sides() {
        let mut g = Graph::new(2, 8);
        g.add_edge(0, 0, 1);
        let p = partition_affinity(&g, 16, 1);
        assert_eq!(p.blocks, 2);
        assert!(p.right_block.iter().all(|&b| b < 2));
    }

    #[test]
    fn sweeps_recover_permuted_clusters() {
        let g = permuted_clusters(4, 4);
        let p = partition_affinity(&g, 4, 2);
        // Every edge should land in a consistent block pair: for each left
        // block, all its traffic goes to exactly one right block.
        let pw = p.pair_weights(&g);
        let b = p.blocks;
        for a in 0..b {
            let nonzero = (0..b).filter(|&c| pw[a * b + c] > 0).count();
            assert_eq!(nonzero, 1, "left block {a} smears traffic: {pw:?}");
        }
        let total: Weight = pw.iter().sum();
        assert_eq!(total, bipartite_total(&g));
    }

    #[test]
    fn balance_cap_respected() {
        // All traffic towards one left block would otherwise pull every
        // right node into it.
        let mut g = Graph::new(4, 8);
        for r in 0..8 {
            g.add_edge(0, r, 100);
        }
        let p = partition_affinity(&g, 2, 2);
        for blk in 0..2 {
            let count = p.right_block.iter().filter(|&&x| x == blk).count();
            assert_eq!(count, 4, "cap ⌈8/2⌉ = 4 broken: {:?}", p.right_block);
        }
    }

    #[test]
    fn deterministic() {
        let g = permuted_clusters(3, 5);
        let a = partition_affinity(&g, 3, 2);
        let b = partition_affinity(&g, 3, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn pair_weights_cover_all_traffic() {
        let mut g = Graph::new(5, 5);
        g.add_edge(0, 4, 3);
        g.add_edge(2, 1, 7);
        g.add_edge(4, 0, 2);
        let p = partition_affinity(&g, 2, 1);
        let total: Weight = p.pair_weights(&g).iter().sum();
        assert_eq!(total, 12);
    }

    fn bipartite_total(g: &Graph) -> Weight {
        g.edges().map(|(_, _, _, w)| w).sum()
    }
}
