//! Structural properties used throughout the paper: `P(G)`, `W(G)`, `Δ(G)`
//! and weight-regularity (Section 2.3).

use crate::graph::{Graph, Weight};

/// `P(G)`: the sum of all live edge weights — the total communication volume.
pub fn total_weight(g: &Graph) -> Weight {
    g.edges().map(|(_, _, _, w)| w).sum()
}

/// `W(G)`: the maximum over all nodes of `w(s)`, the summed weight adjacent
/// to `s`. A node with weight `W(G)` keeps its port busy for at least that
/// long, so `W(G)` lower-bounds the total transmission time.
pub fn max_node_weight(g: &Graph) -> Weight {
    let left = (0..g.left_count()).map(|l| g.node_weight_left(l));
    let right = (0..g.right_count()).map(|r| g.node_weight_right(r));
    left.chain(right).max().unwrap_or(0)
}

/// `Δ(G)`: the maximum node degree (live edges). A node of degree `Δ` needs
/// at least `Δ` steps, so `Δ(G)` lower-bounds the number of steps.
pub fn max_degree(g: &Graph) -> usize {
    let left = (0..g.left_count()).map(|l| g.degree_left(l));
    let right = (0..g.right_count()).map(|r| g.degree_right(r));
    left.chain(right).max().unwrap_or(0)
}

/// True when every node of the graph has the same weight `w(s)` — the
/// precondition of WRGP. Isolated nodes are permitted only when the common
/// weight is zero (i.e. the graph is empty).
pub fn is_weight_regular(g: &Graph) -> bool {
    regular_weight(g).is_some()
}

/// The common node weight of a weight-regular graph, `None` when the graph
/// is not weight-regular.
pub fn regular_weight(g: &Graph) -> Option<Weight> {
    if g.left_count() == 0 && g.right_count() == 0 {
        return Some(0);
    }
    let mut expected: Option<Weight> = None;
    let left = (0..g.left_count()).map(|l| g.node_weight_left(l));
    let right = (0..g.right_count()).map(|r| g.node_weight_right(r));
    for w in left.chain(right) {
        match expected {
            None => expected = Some(w),
            Some(e) if e != w => return None,
            _ => {}
        }
    }
    expected
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_properties() {
        let g = Graph::new(2, 2);
        assert_eq!(total_weight(&g), 0);
        assert_eq!(max_node_weight(&g), 0);
        assert_eq!(max_degree(&g), 0);
        // Isolated nodes all have weight zero: regular.
        assert!(is_weight_regular(&g));
        assert_eq!(regular_weight(&g), Some(0));
    }

    #[test]
    fn simple_properties() {
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 3);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 1, 2);
        assert_eq!(total_weight(&g), 9);
        assert_eq!(max_node_weight(&g), 7); // left 0: 3 + 4
        assert_eq!(max_degree(&g), 2);
        assert!(!is_weight_regular(&g));
    }

    #[test]
    fn weight_regular_detection() {
        // Each node weight = 5.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 0, 2);
        g.add_edge(1, 1, 3);
        assert!(is_weight_regular(&g));
        assert_eq!(regular_weight(&g), Some(5));
    }

    #[test]
    fn isolated_node_breaks_regularity() {
        let mut g = Graph::new(2, 1);
        g.add_edge(0, 0, 5);
        // Left node 1 is isolated (weight 0) while others weigh 5.
        assert!(!is_weight_regular(&g));
    }

    #[test]
    fn dead_edges_ignored() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.add_edge(0, 0, 2);
        g.remove_edge(e);
        assert_eq!(total_weight(&g), 2);
        assert_eq!(max_node_weight(&g), 2);
        assert_eq!(max_degree(&g), 1);
    }
}
