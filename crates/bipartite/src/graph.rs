//! A mutable weighted bipartite multigraph.
//!
//! Node identifiers are plain `usize` indices, scoped to a [`Side`]: left
//! nodes `0..left_count()` and right nodes `0..right_count()`. Edges carry
//! integer weights ("ticks") and a stable [`EdgeId`]; removing an edge (or
//! peeling its weight down to zero) tombstones it without invalidating other
//! ids, which is what the scheduler's peeling loops need.

use serde::{Deserialize, Serialize};

/// Integer edge weight in scheduler ticks.
pub type Weight = u64;

/// Which side of the bipartition a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Sender side (cluster `C1` in the paper).
    Left,
    /// Receiver side (cluster `C2` in the paper).
    Right,
}

/// Stable identifier of an edge within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "no edge" in the intrusive live lists.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeData {
    left: u32,
    right: u32,
    weight: Weight,
    alive: bool,
    // Intrusive doubly-linked list links, valid only while `alive`. Each
    // live edge sits on three lists: the global live list and the live
    // lists of its two endpoints. All three are kept in ascending-id
    // order (edges are appended at creation, in id order, and unlinking
    // preserves relative order), so iteration order matches the old
    // scan-and-filter implementation exactly.
    prev_live: u32,
    next_live: u32,
    prev_at_left: u32,
    next_at_left: u32,
    prev_at_right: u32,
    next_at_right: u32,
}

/// A weighted bipartite multigraph with tombstoned edge removal.
///
/// Parallel edges between the same `(left, right)` pair are allowed (the
/// regularisation step of GGP can create them), and every query skips dead
/// edges transparently.
///
/// Live edges are threaded through intrusive doubly-linked lists (one
/// global, one per node), so edge iteration, adjacency iteration, and
/// degrees cost O(live) / O(1) regardless of how many edges have been
/// tombstoned — late WRGP peels no longer pay to skip dead edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    edges: Vec<EdgeData>,
    live_head: u32,
    live_tail: u32,
    left_head: Vec<u32>,
    left_tail: Vec<u32>,
    left_deg: Vec<u32>,
    right_head: Vec<u32>,
    right_tail: Vec<u32>,
    right_deg: Vec<u32>,
    live_edges: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0, 0)
    }
}

impl Graph {
    /// Creates a graph with `left` and `right` isolated nodes and no edges.
    pub fn new(left: usize, right: usize) -> Self {
        Graph {
            edges: Vec::new(),
            live_head: NIL,
            live_tail: NIL,
            left_head: vec![NIL; left],
            left_tail: vec![NIL; left],
            left_deg: vec![0; left],
            right_head: vec![NIL; right],
            right_tail: vec![NIL; right],
            right_deg: vec![0; right],
            live_edges: 0,
        }
    }

    /// Number of left-side nodes.
    #[inline]
    pub fn left_count(&self) -> usize {
        self.left_head.len()
    }

    /// Number of right-side nodes.
    #[inline]
    pub fn right_count(&self) -> usize {
        self.right_head.len()
    }

    /// Total number of nodes, `n = |V1| + |V2|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.left_count() + self.right_count()
    }

    /// Number of live (non-removed) edges, `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// True when the graph has no live edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_edges == 0
    }

    /// One past the largest edge id ever allocated (dead or alive). Edge ids
    /// are stable for the lifetime of the graph, so a `Vec` of this length
    /// indexed by [`EdgeId::index`] covers every id the graph can produce.
    #[inline]
    pub fn edge_id_bound(&self) -> usize {
        self.edges.len()
    }

    /// Appends a new left-side node and returns its index.
    pub fn add_left_node(&mut self) -> usize {
        self.left_head.push(NIL);
        self.left_tail.push(NIL);
        self.left_deg.push(0);
        self.left_head.len() - 1
    }

    /// Appends a new right-side node and returns its index.
    pub fn add_right_node(&mut self) -> usize {
        self.right_head.push(NIL);
        self.right_tail.push(NIL);
        self.right_deg.push(0);
        self.right_head.len() - 1
    }

    /// Adds an edge of weight `weight` between left node `left` and right
    /// node `right`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `weight == 0` (zero-weight
    /// communications do not exist in the model; use no edge instead).
    pub fn add_edge(&mut self, left: usize, right: usize, weight: Weight) -> EdgeId {
        assert!(left < self.left_count(), "left node {left} out of range");
        assert!(
            right < self.right_count(),
            "right node {right} out of range"
        );
        assert!(weight > 0, "edges must have positive weight");
        let raw = u32::try_from(self.edges.len()).expect("too many edges");
        assert!(raw != NIL, "edge id space exhausted");
        let id = EdgeId(raw);
        self.edges.push(EdgeData {
            left: left as u32,
            right: right as u32,
            weight,
            alive: true,
            prev_live: self.live_tail,
            next_live: NIL,
            prev_at_left: self.left_tail[left],
            next_at_left: NIL,
            prev_at_right: self.right_tail[right],
            next_at_right: NIL,
        });
        // Append to the tails: ids are created in ascending order, so
        // tail-appends keep every live list id-sorted.
        if self.live_tail == NIL {
            self.live_head = raw;
        } else {
            self.edges[self.live_tail as usize].next_live = raw;
        }
        self.live_tail = raw;
        if self.left_tail[left] == NIL {
            self.left_head[left] = raw;
        } else {
            self.edges[self.left_tail[left] as usize].next_at_left = raw;
        }
        self.left_tail[left] = raw;
        if self.right_tail[right] == NIL {
            self.right_head[right] = raw;
        } else {
            self.edges[self.right_tail[right] as usize].next_at_right = raw;
        }
        self.right_tail[right] = raw;
        self.left_deg[left] += 1;
        self.right_deg[right] += 1;
        self.live_edges += 1;
        id
    }

    /// True when edge `e` exists and has not been removed.
    #[inline]
    pub fn is_alive(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|d| d.alive)
    }

    /// Left endpoint of edge `e` (valid even for removed edges).
    #[inline]
    pub fn left_of(&self, e: EdgeId) -> usize {
        self.edges[e.index()].left as usize
    }

    /// Right endpoint of edge `e` (valid even for removed edges).
    #[inline]
    pub fn right_of(&self, e: EdgeId) -> usize {
        self.edges[e.index()].right as usize
    }

    /// Current weight of edge `e`. Zero for removed edges.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        let d = &self.edges[e.index()];
        if d.alive {
            d.weight
        } else {
            0
        }
    }

    /// Overwrites the weight of live edge `e`; setting it to zero removes the
    /// edge.
    pub fn set_weight(&mut self, e: EdgeId, weight: Weight) {
        assert!(self.is_alive(e), "cannot set weight of a removed edge");
        if weight == 0 {
            self.remove_edge(e);
        } else {
            self.edges[e.index()].weight = weight;
        }
    }

    /// Decreases the weight of live edge `e` by `delta`, removing the edge
    /// when it reaches zero. This is the peeling primitive of WRGP.
    ///
    /// # Panics
    ///
    /// Panics if `delta` exceeds the current weight.
    pub fn decrease_weight(&mut self, e: EdgeId, delta: Weight) {
        assert!(self.is_alive(e), "cannot peel a removed edge");
        let d = &mut self.edges[e.index()];
        assert!(
            delta <= d.weight,
            "peel of {delta} exceeds weight {}",
            d.weight
        );
        d.weight -= delta;
        if d.weight == 0 {
            let id = e;
            self.remove_edge(id);
        }
    }

    /// Tombstones edge `e` in O(1). Other edge ids remain valid, and
    /// `left_of` / `right_of` still answer for the removed edge.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let i = e.index();
        if !self.edges[i].alive {
            return;
        }
        self.edges[i].alive = false;
        self.edges[i].weight = 0;
        self.live_edges -= 1;

        let d = &self.edges[i];
        let (gp, gn) = (d.prev_live, d.next_live);
        let (l, lp, ln) = (d.left as usize, d.prev_at_left, d.next_at_left);
        let (r, rp, rn) = (d.right as usize, d.prev_at_right, d.next_at_right);

        // Unlink from the global live list.
        match gp {
            NIL => self.live_head = gn,
            p => self.edges[p as usize].next_live = gn,
        }
        match gn {
            NIL => self.live_tail = gp,
            n => self.edges[n as usize].prev_live = gp,
        }
        // Unlink from the left endpoint's list.
        match lp {
            NIL => self.left_head[l] = ln,
            p => self.edges[p as usize].next_at_left = ln,
        }
        match ln {
            NIL => self.left_tail[l] = lp,
            n => self.edges[n as usize].prev_at_left = lp,
        }
        self.left_deg[l] -= 1;
        // Unlink from the right endpoint's list.
        match rp {
            NIL => self.right_head[r] = rn,
            p => self.edges[p as usize].next_at_right = rn,
        }
        match rn {
            NIL => self.right_tail[r] = rp,
            n => self.edges[n as usize].prev_at_right = rp,
        }
        self.right_deg[r] -= 1;
    }

    /// Iterates over the ids of all live edges in ascending id order.
    ///
    /// Cost is O(live edges): the walk follows the live list and never
    /// touches tombstoned edges, however many have accumulated.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        let mut cur = self.live_head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let id = EdgeId(cur);
            cur = self.edges[cur as usize].next_live;
            Some(id)
        })
    }

    /// Iterates over `(EdgeId, left, right, weight)` for all live edges in
    /// ascending id order. O(live edges), like [`edge_ids`](Graph::edge_ids).
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, usize, usize, Weight)> + '_ {
        self.edge_ids().map(|e| {
            let d = &self.edges[e.index()];
            (e, d.left as usize, d.right as usize, d.weight)
        })
    }

    /// Live edges adjacent to left node `l`, ascending by id. O(degree).
    pub fn edges_of_left(&self, l: usize) -> impl Iterator<Item = EdgeId> + '_ {
        let mut cur = self.left_head[l];
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let id = EdgeId(cur);
            cur = self.edges[cur as usize].next_at_left;
            Some(id)
        })
    }

    /// Live edges adjacent to right node `r`, ascending by id. O(degree).
    pub fn edges_of_right(&self, r: usize) -> impl Iterator<Item = EdgeId> + '_ {
        let mut cur = self.right_head[r];
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let id = EdgeId(cur);
            cur = self.edges[cur as usize].next_at_right;
            Some(id)
        })
    }

    /// Degree of left node `l` (live edges only). O(1).
    #[inline]
    pub fn degree_left(&self, l: usize) -> usize {
        self.left_deg[l] as usize
    }

    /// Degree of right node `r` (live edges only). O(1).
    #[inline]
    pub fn degree_right(&self, r: usize) -> usize {
        self.right_deg[r] as usize
    }

    /// Sum of the weights of live edges adjacent to left node `l` — the
    /// paper's `w(s)` for a sender.
    pub fn node_weight_left(&self, l: usize) -> Weight {
        self.edges_of_left(l).map(|e| self.weight(e)).sum()
    }

    /// Sum of the weights of live edges adjacent to right node `r` — the
    /// paper's `w(s)` for a receiver.
    pub fn node_weight_right(&self, r: usize) -> Weight {
        self.edges_of_right(r).map(|e| self.weight(e)).sum()
    }

    /// Builds a graph from a dense weight matrix (`matrix[l][r]` = weight,
    /// zero meaning "no edge"). The paper's communication matrix `C`
    /// viewed as a graph (Section 2.2).
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_matrix(matrix: &[Vec<Weight>]) -> Self {
        let nl = matrix.len();
        let nr = matrix.first().map_or(0, |row| row.len());
        let mut g = Graph::new(nl, nr);
        for (l, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), nr, "ragged matrix");
            for (r, &w) in row.iter().enumerate() {
                if w > 0 {
                    g.add_edge(l, r, w);
                }
            }
        }
        g
    }

    /// Finds the first (lowest-id) live edge between left node `left` and
    /// right node `right`, if any. O(degree of `left`).
    ///
    /// Parallel edges are allowed, so "first" matters: this is the edge a
    /// dense-matrix view of the graph would attribute the cell to, which is
    /// what in-place delta editing needs.
    pub fn find_edge(&self, left: usize, right: usize) -> Option<EdgeId> {
        self.edges_of_left(left)
            .find(|&e| self.right_of(e) == right)
    }

    /// Sets the weight of the `(left, right)` cell in the dense-matrix view
    /// of the graph: overwrites the first live parallel edge if one exists,
    /// otherwise appends a fresh edge. Returns the id of the edge written.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `weight == 0` (use
    /// [`remove_edge`](Graph::remove_edge) via [`find_edge`](Graph::find_edge)
    /// to clear a cell).
    pub fn upsert_edge(&mut self, left: usize, right: usize, weight: Weight) -> EdgeId {
        assert!(weight > 0, "edges must have positive weight");
        match self.find_edge(left, right) {
            Some(e) => {
                self.set_weight(e, weight);
                e
            }
            None => self.add_edge(left, right, weight),
        }
    }

    /// Returns a compacted copy of the graph containing only live edges,
    /// together with the mapping from new edge ids to the original ids.
    pub fn compact(&self) -> (Graph, Vec<EdgeId>) {
        let mut g = Graph::new(self.left_count(), self.right_count());
        let mut back = Vec::with_capacity(self.live_edges);
        for (id, l, r, w) in self.edges() {
            g.add_edge(l, r, w);
            back.push(id);
        }
        (g, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, 2);
        assert_eq!(g.left_count(), 3);
        assert_eq!(g.right_count(), 2);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 1, 7);
        let e1 = g.add_edge(1, 0, 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.left_of(e0), 0);
        assert_eq!(g.right_of(e0), 1);
        assert_eq!(g.weight(e0), 7);
        assert_eq!(g.weight(e1), 3);
        assert_eq!(g.degree_left(0), 1);
        assert_eq!(g.node_weight_left(0), 7);
        assert_eq!(g.node_weight_right(0), 3);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 2);
        g.add_edge(0, 0, 5);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_weight_left(0), 7);
        assert_eq!(g.degree_left(0), 2);
    }

    #[test]
    fn decrease_weight_peels_and_removes() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.decrease_weight(e, 2);
        assert_eq!(g.weight(e), 3);
        assert!(g.is_alive(e));
        g.decrease_weight(e, 3);
        assert!(!g.is_alive(e));
        assert_eq!(g.weight(e), 0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds weight")]
    fn overpeel_panics() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.decrease_weight(e, 6);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_edge_rejected() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 0);
    }

    #[test]
    fn remove_edge_is_idempotent() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.remove_edge(e);
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree_left(0), 0);
    }

    #[test]
    fn set_weight_zero_removes() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.set_weight(e, 0);
        assert!(!g.is_alive(e));
    }

    #[test]
    fn grow_nodes() {
        let mut g = Graph::new(1, 1);
        let l = g.add_left_node();
        let r = g.add_right_node();
        assert_eq!((l, r), (1, 1));
        g.add_edge(l, r, 4);
        assert_eq!(g.node_weight_left(1), 4);
    }

    #[test]
    fn from_matrix_builds_edges() {
        let g = Graph::from_matrix(&[vec![0, 5], vec![3, 0]]);
        assert_eq!(g.left_count(), 2);
        assert_eq!(g.right_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_weight_left(0), 5);
        assert_eq!(g.node_weight_right(0), 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_matrix_rejects_ragged() {
        Graph::from_matrix(&[vec![1, 2], vec![3]]);
    }

    #[test]
    fn compact_preserves_live_edges_and_mapping() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 0, 1);
        let e1 = g.add_edge(0, 1, 2);
        let e2 = g.add_edge(1, 1, 3);
        g.remove_edge(e1);
        let (c, back) = g.compact();
        assert_eq!(c.edge_count(), 2);
        assert_eq!(back, vec![e0, e2]);
        let weights: Vec<Weight> = c.edges().map(|(_, _, _, w)| w).collect();
        assert_eq!(weights, vec![1, 3]);
    }

    #[test]
    fn live_lists_survive_interleaved_removal() {
        // Remove head, middle, and tail edges of the same node's list and
        // check every iterator stays id-sorted and consistent.
        let mut g = Graph::new(2, 3);
        let e0 = g.add_edge(0, 0, 1);
        let e1 = g.add_edge(0, 1, 2);
        let e2 = g.add_edge(0, 2, 3);
        let e3 = g.add_edge(1, 0, 4);
        let e4 = g.add_edge(0, 0, 5);

        g.remove_edge(e1); // middle of left-0's list
        assert_eq!(g.edges_of_left(0).collect::<Vec<_>>(), vec![e0, e2, e4]);
        g.remove_edge(e0); // head
        assert_eq!(g.edges_of_left(0).collect::<Vec<_>>(), vec![e2, e4]);
        g.remove_edge(e4); // tail
        assert_eq!(g.edges_of_left(0).collect::<Vec<_>>(), vec![e2]);
        assert_eq!(g.edge_ids().collect::<Vec<_>>(), vec![e2, e3]);
        assert_eq!(g.edges_of_right(0).collect::<Vec<_>>(), vec![e3]);
        assert_eq!(g.degree_left(0), 1);
        assert_eq!(g.degree_left(1), 1);
        assert_eq!(g.degree_right(0), 1);
        assert_eq!(g.degree_right(1), 0);
        assert_eq!(g.edge_count(), 2);

        // Growth after removals appends at the tails.
        let e5 = g.add_edge(0, 1, 6);
        assert_eq!(g.edges_of_left(0).collect::<Vec<_>>(), vec![e2, e5]);
        assert_eq!(g.edge_ids().collect::<Vec<_>>(), vec![e2, e3, e5]);
    }

    #[test]
    fn removed_edges_keep_endpoints() {
        // Schedules hold EdgeIds of edges that have since been peeled to
        // zero; their endpoints must stay queryable.
        let mut g = Graph::new(2, 2);
        let e = g.add_edge(1, 0, 3);
        g.decrease_weight(e, 3);
        assert!(!g.is_alive(e));
        assert_eq!(g.left_of(e), 1);
        assert_eq!(g.right_of(e), 0);
        assert_eq!(g.weight(e), 0);
    }

    #[test]
    fn find_edge_skips_dead_and_prefers_lowest_id() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 1, 2);
        let e1 = g.add_edge(0, 1, 5); // parallel
        assert_eq!(g.find_edge(0, 1), Some(e0));
        assert_eq!(g.find_edge(0, 0), None);
        assert_eq!(g.find_edge(1, 1), None);
        g.remove_edge(e0);
        assert_eq!(g.find_edge(0, 1), Some(e1));
        g.remove_edge(e1);
        assert_eq!(g.find_edge(0, 1), None);
    }

    #[test]
    fn upsert_edge_overwrites_or_appends() {
        let mut g = Graph::new(2, 2);
        let e0 = g.upsert_edge(0, 1, 3);
        assert_eq!(g.weight(e0), 3);
        // Existing cell: same id, new weight, no new edge.
        let e_again = g.upsert_edge(0, 1, 7);
        assert_eq!(e_again, e0);
        assert_eq!(g.weight(e0), 7);
        assert_eq!(g.edge_count(), 1);
        // Cleared cell: upsert mints a fresh id.
        g.remove_edge(e0);
        let e1 = g.upsert_edge(0, 1, 4);
        assert_ne!(e1, e0);
        assert_eq!(g.weight(e1), 4);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn upsert_edge_rejects_zero_weight() {
        let mut g = Graph::new(1, 1);
        g.upsert_edge(0, 0, 0);
    }

    #[test]
    fn edge_iteration_skips_dead() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 0, 1);
        g.add_edge(1, 1, 2);
        g.remove_edge(e0);
        let ids: Vec<EdgeId> = g.edge_ids().collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(g.edges_of_left(0).count(), 0);
    }
}
