//! A mutable weighted bipartite multigraph.
//!
//! Node identifiers are plain `usize` indices, scoped to a [`Side`]: left
//! nodes `0..left_count()` and right nodes `0..right_count()`. Edges carry
//! integer weights ("ticks") and a stable [`EdgeId`]; removing an edge (or
//! peeling its weight down to zero) tombstones it without invalidating other
//! ids, which is what the scheduler's peeling loops need.

use serde::{Deserialize, Serialize};

/// Integer edge weight in scheduler ticks.
pub type Weight = u64;

/// Which side of the bipartition a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Sender side (cluster `C1` in the paper).
    Left,
    /// Receiver side (cluster `C2` in the paper).
    Right,
}

/// Stable identifier of an edge within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct EdgeData {
    left: u32,
    right: u32,
    weight: Weight,
    alive: bool,
}

/// A weighted bipartite multigraph with tombstoned edge removal.
///
/// Parallel edges between the same `(left, right)` pair are allowed (the
/// regularisation step of GGP can create them), and every query skips dead
/// edges transparently.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    edges: Vec<EdgeData>,
    adj_left: Vec<Vec<EdgeId>>,
    adj_right: Vec<Vec<EdgeId>>,
    live_edges: usize,
}

impl Graph {
    /// Creates a graph with `left` and `right` isolated nodes and no edges.
    pub fn new(left: usize, right: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj_left: vec![Vec::new(); left],
            adj_right: vec![Vec::new(); right],
            live_edges: 0,
        }
    }

    /// Number of left-side nodes.
    #[inline]
    pub fn left_count(&self) -> usize {
        self.adj_left.len()
    }

    /// Number of right-side nodes.
    #[inline]
    pub fn right_count(&self) -> usize {
        self.adj_right.len()
    }

    /// Total number of nodes, `n = |V1| + |V2|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.left_count() + self.right_count()
    }

    /// Number of live (non-removed) edges, `m = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// True when the graph has no live edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live_edges == 0
    }

    /// Appends a new left-side node and returns its index.
    pub fn add_left_node(&mut self) -> usize {
        self.adj_left.push(Vec::new());
        self.adj_left.len() - 1
    }

    /// Appends a new right-side node and returns its index.
    pub fn add_right_node(&mut self) -> usize {
        self.adj_right.push(Vec::new());
        self.adj_right.len() - 1
    }

    /// Adds an edge of weight `weight` between left node `left` and right
    /// node `right`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `weight == 0` (zero-weight
    /// communications do not exist in the model; use no edge instead).
    pub fn add_edge(&mut self, left: usize, right: usize, weight: Weight) -> EdgeId {
        assert!(left < self.left_count(), "left node {left} out of range");
        assert!(right < self.right_count(), "right node {right} out of range");
        assert!(weight > 0, "edges must have positive weight");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("too many edges"));
        self.edges.push(EdgeData {
            left: left as u32,
            right: right as u32,
            weight,
            alive: true,
        });
        self.adj_left[left].push(id);
        self.adj_right[right].push(id);
        self.live_edges += 1;
        id
    }

    /// True when edge `e` exists and has not been removed.
    #[inline]
    pub fn is_alive(&self, e: EdgeId) -> bool {
        self.edges.get(e.index()).is_some_and(|d| d.alive)
    }

    /// Left endpoint of edge `e` (valid even for removed edges).
    #[inline]
    pub fn left_of(&self, e: EdgeId) -> usize {
        self.edges[e.index()].left as usize
    }

    /// Right endpoint of edge `e` (valid even for removed edges).
    #[inline]
    pub fn right_of(&self, e: EdgeId) -> usize {
        self.edges[e.index()].right as usize
    }

    /// Current weight of edge `e`. Zero for removed edges.
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        let d = &self.edges[e.index()];
        if d.alive {
            d.weight
        } else {
            0
        }
    }

    /// Overwrites the weight of live edge `e`; setting it to zero removes the
    /// edge.
    pub fn set_weight(&mut self, e: EdgeId, weight: Weight) {
        assert!(self.is_alive(e), "cannot set weight of a removed edge");
        if weight == 0 {
            self.remove_edge(e);
        } else {
            self.edges[e.index()].weight = weight;
        }
    }

    /// Decreases the weight of live edge `e` by `delta`, removing the edge
    /// when it reaches zero. This is the peeling primitive of WRGP.
    ///
    /// # Panics
    ///
    /// Panics if `delta` exceeds the current weight.
    pub fn decrease_weight(&mut self, e: EdgeId, delta: Weight) {
        assert!(self.is_alive(e), "cannot peel a removed edge");
        let d = &mut self.edges[e.index()];
        assert!(
            delta <= d.weight,
            "peel of {delta} exceeds weight {}",
            d.weight
        );
        d.weight -= delta;
        if d.weight == 0 {
            let id = e;
            self.remove_edge(id);
        }
    }

    /// Tombstones edge `e`. Other edge ids remain valid.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let d = &mut self.edges[e.index()];
        if d.alive {
            d.alive = false;
            d.weight = 0;
            self.live_edges -= 1;
        }
    }

    /// Iterates over the ids of all live edges.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Iterates over `(EdgeId, left, right, weight)` for all live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, usize, usize, Weight)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .map(|(i, d)| (EdgeId(i as u32), d.left as usize, d.right as usize, d.weight))
    }

    /// Live edges adjacent to left node `l`.
    pub fn edges_of_left(&self, l: usize) -> impl Iterator<Item = EdgeId> + '_ {
        self.adj_left[l]
            .iter()
            .copied()
            .filter(move |&e| self.is_alive(e))
    }

    /// Live edges adjacent to right node `r`.
    pub fn edges_of_right(&self, r: usize) -> impl Iterator<Item = EdgeId> + '_ {
        self.adj_right[r]
            .iter()
            .copied()
            .filter(move |&e| self.is_alive(e))
    }

    /// Degree of left node `l` (live edges only).
    pub fn degree_left(&self, l: usize) -> usize {
        self.edges_of_left(l).count()
    }

    /// Degree of right node `r` (live edges only).
    pub fn degree_right(&self, r: usize) -> usize {
        self.edges_of_right(r).count()
    }

    /// Sum of the weights of live edges adjacent to left node `l` — the
    /// paper's `w(s)` for a sender.
    pub fn node_weight_left(&self, l: usize) -> Weight {
        self.edges_of_left(l).map(|e| self.weight(e)).sum()
    }

    /// Sum of the weights of live edges adjacent to right node `r` — the
    /// paper's `w(s)` for a receiver.
    pub fn node_weight_right(&self, r: usize) -> Weight {
        self.edges_of_right(r).map(|e| self.weight(e)).sum()
    }

    /// Builds a graph from a dense weight matrix (`matrix[l][r]` = weight,
    /// zero meaning "no edge"). The paper's communication matrix `C`
    /// viewed as a graph (Section 2.2).
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_matrix(matrix: &[Vec<Weight>]) -> Self {
        let nl = matrix.len();
        let nr = matrix.first().map_or(0, |row| row.len());
        let mut g = Graph::new(nl, nr);
        for (l, row) in matrix.iter().enumerate() {
            assert_eq!(row.len(), nr, "ragged matrix");
            for (r, &w) in row.iter().enumerate() {
                if w > 0 {
                    g.add_edge(l, r, w);
                }
            }
        }
        g
    }

    /// Returns a compacted copy of the graph containing only live edges,
    /// together with the mapping from new edge ids to the original ids.
    pub fn compact(&self) -> (Graph, Vec<EdgeId>) {
        let mut g = Graph::new(self.left_count(), self.right_count());
        let mut back = Vec::with_capacity(self.live_edges);
        for (id, l, r, w) in self.edges() {
            g.add_edge(l, r, w);
            back.push(id);
        }
        (g, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(3, 2);
        assert_eq!(g.left_count(), 3);
        assert_eq!(g.right_count(), 2);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 1, 7);
        let e1 = g.add_edge(1, 0, 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.left_of(e0), 0);
        assert_eq!(g.right_of(e0), 1);
        assert_eq!(g.weight(e0), 7);
        assert_eq!(g.weight(e1), 3);
        assert_eq!(g.degree_left(0), 1);
        assert_eq!(g.node_weight_left(0), 7);
        assert_eq!(g.node_weight_right(0), 3);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 2);
        g.add_edge(0, 0, 5);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_weight_left(0), 7);
        assert_eq!(g.degree_left(0), 2);
    }

    #[test]
    fn decrease_weight_peels_and_removes() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.decrease_weight(e, 2);
        assert_eq!(g.weight(e), 3);
        assert!(g.is_alive(e));
        g.decrease_weight(e, 3);
        assert!(!g.is_alive(e));
        assert_eq!(g.weight(e), 0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds weight")]
    fn overpeel_panics() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.decrease_weight(e, 6);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn zero_weight_edge_rejected() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 0);
    }

    #[test]
    fn remove_edge_is_idempotent() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.remove_edge(e);
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree_left(0), 0);
    }

    #[test]
    fn set_weight_zero_removes() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 5);
        g.set_weight(e, 0);
        assert!(!g.is_alive(e));
    }

    #[test]
    fn grow_nodes() {
        let mut g = Graph::new(1, 1);
        let l = g.add_left_node();
        let r = g.add_right_node();
        assert_eq!((l, r), (1, 1));
        g.add_edge(l, r, 4);
        assert_eq!(g.node_weight_left(1), 4);
    }

    #[test]
    fn from_matrix_builds_edges() {
        let g = Graph::from_matrix(&[vec![0, 5], vec![3, 0]]);
        assert_eq!(g.left_count(), 2);
        assert_eq!(g.right_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_weight_left(0), 5);
        assert_eq!(g.node_weight_right(0), 3);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_matrix_rejects_ragged() {
        Graph::from_matrix(&[vec![1, 2], vec![3]]);
    }

    #[test]
    fn compact_preserves_live_edges_and_mapping() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 0, 1);
        let e1 = g.add_edge(0, 1, 2);
        let e2 = g.add_edge(1, 1, 3);
        g.remove_edge(e1);
        let (c, back) = g.compact();
        assert_eq!(c.edge_count(), 2);
        assert_eq!(back, vec![e0, e2]);
        let weights: Vec<Weight> = c.edges().map(|(_, _, _, w)| w).collect();
        assert_eq!(weights, vec![1, 3]);
    }

    #[test]
    fn edge_iteration_skips_dead() {
        let mut g = Graph::new(2, 2);
        let e0 = g.add_edge(0, 0, 1);
        g.add_edge(1, 1, 2);
        g.remove_edge(e0);
        let ids: Vec<EdgeId> = g.edge_ids().collect();
        assert_eq!(ids.len(), 1);
        assert_eq!(g.edges_of_left(0).count(), 0);
    }
}
