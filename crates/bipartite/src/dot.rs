//! Graphviz (DOT) export for debugging and documentation.

use crate::graph::Graph;
use std::fmt::Write;

/// Renders the graph in Graphviz DOT syntax with left nodes `l0, l1, ...`,
/// right nodes `r0, r1, ...` and edge weights as labels.
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::new();
    out.push_str("graph G {\n  rankdir=LR;\n");
    for l in 0..g.left_count() {
        let _ = writeln!(out, "  l{l} [shape=circle];");
    }
    for r in 0..g.right_count() {
        let _ = writeln!(out, "  r{r} [shape=doublecircle];");
    }
    for (_, l, r, w) in g.edges() {
        let _ = writeln!(out, "  l{l} -- r{r} [label=\"{w}\"];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = Graph::new(2, 1);
        g.add_edge(0, 0, 3);
        g.add_edge(1, 0, 8);
        let dot = to_dot(&g);
        assert!(dot.contains("l0"));
        assert!(dot.contains("l1"));
        assert!(dot.contains("r0"));
        assert!(dot.contains("label=\"3\""));
        assert!(dot.contains("label=\"8\""));
        assert!(dot.starts_with("graph G {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dead_edges_not_exported() {
        let mut g = Graph::new(1, 1);
        let e = g.add_edge(0, 0, 3);
        g.remove_edge(e);
        assert!(!to_dot(&g).contains("label"));
    }
}
