//! Max–min (bottleneck) matchings: maximum-cardinality matchings whose
//! *minimum* edge weight is as large as possible.
//!
//! This is the matching OGGP plugs into the peeling loop (Section 4.3,
//! Figure 6 of the paper): the size of a communication step is the smallest
//! communication in its matching, so maximising that minimum lengthens steps
//! and reduces their number.
//!
//! Two equivalent implementations are provided:
//!
//! * [`max_min_matching_incremental`] — the paper's own algorithm (Fig. 6):
//!   insert edges in decreasing weight order, maintaining a matching by
//!   augmentation, and stop at the first prefix whose maximum matching has
//!   full cardinality. `O(m^2·sqrt(n))` worst case.
//! * [`max_min_matching`] — a threshold binary search over the distinct edge
//!   weights using Hopcroft–Karp, `O(m·sqrt(n)·log m)`. This is the one the
//!   scheduler uses; tests assert both agree on the achieved minimum.

use crate::csr::{CsrAdj, SearchState, NIL};
use crate::graph::{EdgeId, Graph, Weight};
use crate::hopcroft_karp;
use crate::matching::Matching;
use telemetry::counters::{self, Counter};

/// Returns a maximum-cardinality matching of `g` whose minimum edge weight is
/// maximal, via threshold binary search. Empty graph yields an empty matching.
///
/// ```
/// use bipartite::{Graph, bottleneck};
///
/// let mut g = Graph::new(2, 2);
/// g.add_edge(0, 0, 1);
/// g.add_edge(0, 1, 5); // the heavy perfect matching: {(0,1), (1,0)}
/// g.add_edge(1, 0, 4);
/// g.add_edge(1, 1, 1);
/// let m = bottleneck::max_min_matching(&g);
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.min_weight(&g), Some(4));
/// ```
pub fn max_min_matching(g: &Graph) -> Matching {
    // The initial maximum matching is both the cardinality witness and the
    // seed of the first threshold probe: each probe then only has to repair
    // the carried matching, not rebuild it.
    let witness = hopcroft_karp::maximum_matching(g);
    let target = witness.len();
    if target == 0 {
        return Matching::new();
    }
    // Distinct weights, ascending. The predicate "edges >= w admit a matching
    // of size `target`" is monotone decreasing in w; find the largest w
    // where it still holds.
    let mut weights: Vec<Weight> = g.edges().map(|(_, _, _, w)| w).collect();
    weights.sort_unstable();
    weights.dedup();
    // Carry the latest full-cardinality matching from probe to probe; its
    // edges passing the next probe's filter stay a valid matching there.
    let mut carry = witness;
    let (mut lo, mut hi) = (0usize, weights.len() - 1); // invariant: lo feasible
    while lo < hi {
        counters::incr(Counter::ThresholdProbes);
        let mid = (lo + hi).div_ceil(2);
        let t = weights[mid];
        let probe = hopcroft_karp::maximum_matching_where_seeded(g, |e| g.weight(e) >= t, &carry);
        if probe.len() == target {
            lo = mid;
            carry = probe;
        } else {
            hi = mid - 1;
        }
    }
    canonical_matching_at(g, weights[lo])
}

/// The canonical matching returned at threshold `t`: a heaviest-first greedy
/// seed over the edges of weight `>= t` (ties by ascending edge id),
/// augmented to maximum cardinality over the ascending-id filtered
/// adjacency. This is the deterministic function of `(g, t)` that both
/// [`max_min_matching`] and the incremental engine's max–min path end with,
/// so the two return bit-identical matchings — and it is chosen so the
/// engine can compute it from state it already maintains: the greedy seed
/// reads straight off its heaviest-first order, and its probe adjacency
/// holds exactly the filtered edge set with rows kept in this ascending-id
/// order (`CsrAdj::insert_by_id` preserves it across the sweep). The greedy
/// seed is nearly maximum on the dense graphs the peeling loop produces, so
/// the augmentation only repairs a remainder instead of rebuilding the
/// whole matching breadth-first from scratch.
pub fn canonical_matching_at(g: &Graph, t: Weight) -> Matching {
    let nl = g.left_count();
    let nr = g.right_count();
    let mut adj = CsrAdj::new();
    adj.build_where(g, |e| g.weight(e) >= t);
    let mut order: Vec<(EdgeId, usize, usize, Weight)> =
        g.edges().filter(|&(_, _, _, w)| w >= t).collect();
    order.sort_unstable_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)));
    let mut match_left: Vec<u32> = vec![NIL; nl];
    let mut match_right: Vec<u32> = vec![NIL; nr];
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl];
    for &(id, l, r, _) in &order {
        if match_left[l] == NIL && match_right[r] == NIL {
            match_left[l] = r as u32;
            match_right[r] = l as u32;
            via_left[l] = id;
        }
    }
    let mut search = SearchState::new();
    search.prepare(nl);
    hopcroft_karp::kuhn_to_maximum(
        &adj,
        &mut match_left,
        &mut match_right,
        &mut via_left,
        &mut search,
    );
    hopcroft_karp::gather(&match_left, &via_left)
}

/// The paper's Figure 6 algorithm: insert edges in decreasing weight order,
/// growing a matching by single augmenting-path searches, until the matching
/// reaches the maximum cardinality of the whole graph.
pub fn max_min_matching_incremental(g: &Graph) -> Matching {
    let target = hopcroft_karp::maximum_matching(g).len();
    if target == 0 {
        return Matching::new();
    }
    let mut order: Vec<(EdgeId, usize, usize, Weight)> = g.edges().collect();
    order.sort_unstable_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)));

    let nl = g.left_count();
    let nr = g.right_count();
    // CSR layout sized from the full degrees, rows filled by descending
    // weight as the sweep inserts edges (one O(1) push each).
    let mut adj = CsrAdj::new();
    adj.build_where(g, |_| false);
    let mut match_left: Vec<u32> = vec![NIL; nl];
    let mut match_right: Vec<u32> = vec![NIL; nr];
    let mut via_left: Vec<EdgeId> = vec![EdgeId(0); nl];
    let mut search = SearchState::new();
    search.prepare(nl);
    let mut size = 0usize;

    for &(id, l, r, _) in &order {
        adj.push(l, r as u32, id);
        if size == target {
            unreachable!("loop exits as soon as the target size is reached");
        }
        // A new augmenting path must use the inserted edge, but searching from
        // every free left node is simple and correct: at most one augmentation
        // can succeed per insertion. The visited set is shared across the free
        // nodes of one insertion and invalidated in O(1) for the next.
        search.next_epoch();
        for free in 0..nl {
            if match_left[free] != NIL {
                continue;
            }
            counters::incr(Counter::KuhnAttempts);
            if hopcroft_karp::kuhn_augment(
                free,
                &adj,
                &mut match_left,
                &mut match_right,
                &mut via_left,
                &mut search,
            ) {
                size += 1;
                break;
            }
        }
        if size == target {
            break;
        }
    }

    let mut m = Matching::new();
    for l in 0..nl {
        if match_left[l] != NIL {
            m.push(via_left[l]);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(2, 2);
        assert!(max_min_matching(&g).is_empty());
        assert!(max_min_matching_incremental(&g).is_empty());
    }

    #[test]
    fn prefers_heavy_perfect_matching() {
        // Two perfect matchings: {1,1} (min 1) and {5,4} (min 4).
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 1);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 0, 4);
        g.add_edge(1, 1, 1);
        let m = max_min_matching(&g);
        assert_eq!(m.len(), 2);
        assert_eq!(m.min_weight(&g), Some(4));
        let mi = max_min_matching_incremental(&g);
        assert_eq!(mi.min_weight(&g), Some(4));
    }

    #[test]
    fn cardinality_never_sacrificed() {
        // The only maximum matching must use the weight-1 edge; bottleneck
        // matching keeps full cardinality even though a single heavy edge
        // would have a larger minimum.
        let mut g = Graph::new(2, 2);
        g.add_edge(0, 0, 100);
        g.add_edge(1, 0, 50); // shares right 0 with the heavy edge
        g.add_edge(1, 1, 1);
        let m = max_min_matching(&g);
        assert_eq!(m.len(), 2);
        assert_eq!(m.min_weight(&g), Some(1));
    }

    #[test]
    fn single_edge() {
        let mut g = Graph::new(1, 1);
        g.add_edge(0, 0, 7);
        let m = max_min_matching(&g);
        assert_eq!(m.len(), 1);
        assert_eq!(m.min_weight(&g), Some(7));
    }

    #[test]
    fn agreement_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(1..8);
            let mut g = Graph::new(nl, nr);
            let m = rng.gen_range(0..=nl * nr * 2);
            for _ in 0..m {
                g.add_edge(
                    rng.gen_range(0..nl),
                    rng.gen_range(0..nr),
                    rng.gen_range(1..100),
                );
            }
            let a = max_min_matching(&g);
            let b = max_min_matching_incremental(&g);
            assert_eq!(a.len(), b.len(), "cardinality must agree");
            assert_eq!(
                a.min_weight(&g),
                b.min_weight(&g),
                "achieved bottleneck must agree"
            );
            assert!(a.is_valid(&g));
            assert!(b.is_valid(&g));
        }
    }

    #[test]
    fn all_equal_weights_is_any_maximum_matching() {
        let mut g = Graph::new(3, 3);
        for l in 0..3 {
            for r in 0..3 {
                g.add_edge(l, r, 9);
            }
        }
        let m = max_min_matching(&g);
        assert_eq!(m.len(), 3);
        assert_eq!(m.min_weight(&g), Some(9));
    }
}
