#!/usr/bin/env bash
# Repository gate: formatting, lints, release build, the full test suite,
# the deterministic work-counter regression check and the serving-layer
# load test. Fails fast: the first failing step aborts the run with a
# banner naming it.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

STEP=""

banner() {
  STEP="$1"
  printf '\n===================================================================\n'
  printf '==> %s\n' "$STEP"
  printf '===================================================================\n'
}

trap 'status=$?; if [ $status -ne 0 ]; then printf "\nFAILED at step: %s (exit %d)\n" "$STEP" "$status" >&2; fi' EXIT

banner "format check (cargo fmt --check)"
cargo fmt --check

banner "lints (cargo clippy --workspace --all-targets -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

banner "release build (cargo build --release)"
cargo build --release

banner "test suite (cargo test --workspace -q)"
cargo test --workspace -q

banner "work-counter regression (fixed-seed campaign vs BENCH_counters.json)"
cargo run --release -p bench --bin counters_baseline -- --check

banner "cache reclamation stress (readers racing writers through eviction)"
cargo test --release -p redistd stress_reclamation_extended -- --ignored

banner "cache read-path under miri (skipped when the toolchain lacks it)"
if cargo miri --version > /dev/null 2>&1; then
  MIRIFLAGS="-Zmiri-disable-isolation" cargo miri test -p redistd --lib cache
else
  echo "cargo miri unavailable on this toolchain; relying on the stress step above"
fi

banner "serving-scale campaign (redistload --campaign -> BENCH_serve.json)"
cargo run --release -p redistd --bin redistload -- \
  --campaign 64,256,1024 --requests 512 --distinct 8 --n 10 --out BENCH_serve.json

banner "streaming-admission campaign (redistload --sessions -> BENCH_session.json)"
# A live session on each serving core streams 48 delta batches; every
# patched schedule must byte-compare equal to a client-side mirror planner
# and deliver exactly what a cold plan of the post-delta matrix delivers.
cargo run --release -p redistd --bin redistload -- \
  --sessions 48 --delta-cells 2 --n 12 --out BENCH_session.json

banner "delta-replan speedup gate (delta_bench -> BENCH_delta.json)"
# Regenerates the checked-in study and fails unless single-cell replans at
# n=256 beat cold OGGP planning by at least 3x.
cargo run --release -p bench --bin delta_bench

banner "serve-scale smoke (daemon at 256 connections + METRICS/FLIGHT gates)"
PORT_FILE="$(mktemp)"
FLIGHT_DUMP="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/redistd --addr 127.0.0.1:0 --workers 2 --queue-depth 1024 \
  --port-file "$PORT_FILE" --flight-dump "$FLIGHT_DUMP" &
REDISTD_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "redistd never wrote its port file" >&2; exit 1; }
ADDR="$(cat "$PORT_FILE")"
# Closed-loop burst at 256 connections: exits non-zero on any response
# that is not byte-identical to a cold plan.
./target/release/redistload --addr "$ADDR" \
  --requests 512 --connections 256 --distinct 4 --n 10 --out /dev/null
# Open-loop mode against the same daemon (latency from scheduled send).
./target/release/redistload --addr "$ADDR" \
  --requests 100 --connections 8 --rate 400 --distinct 4 --n 10 --out /dev/null
# The daemon must be running the event core, the exposition must be
# well-formed, and the flight recorder must have a record for every
# request the load generator sent.
CORE="$(./target/release/redistctl stats --addr "$ADDR" --field core)"
[ "$CORE" = "event" ] || { echo "expected event core, daemon reports '$CORE'" >&2; exit 1; }
./target/release/redistctl metrics --addr "$ADDR" --validate > /dev/null
./target/release/redistctl flight --addr "$ADDR" --expect-requests 612 > /dev/null
kill -TERM "$REDISTD_PID"
wait "$REDISTD_PID"
[ -s "$FLIGHT_DUMP" ] || { echo "redistd wrote no flight dump on drain" >&2; exit 1; }
rm -f "$PORT_FILE" "$FLIGHT_DUMP"

banner "hierarchical-planner scale smoke (scale_bench --smoke, n=256 only)"
cargo run --release -p bench --bin scale_bench -- --smoke

banner "execution-runtime fault campaign (redistexec -> BENCH_exec.json)"
cargo run --release -p redistexec --bin redistexec -- \
  --bench --seeds 40 --out BENCH_exec.json

banner "heterogeneous-topology smoke (hetero_bench --smoke)"
# Plans and executes the {homogeneous, star, two-backbone} x {fault-free,
# faulty} slice under per-bottleneck k derivation; fails on any validation
# error, delivery violation, or a cost beating the heterogeneity-aware
# lower bound. The homogeneous arm is byte-compared to the Platform oracle.
cargo run --release -p bench --bin hetero_bench -- --smoke > /dev/null

printf '\nAll checks passed.\n'
