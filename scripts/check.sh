#!/usr/bin/env bash
# Repository gate: formatting, lints, release build, the full test suite,
# the deterministic work-counter regression check and the serving-layer
# load test. Fails fast: the first failing step aborts the run with a
# banner naming it.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

STEP=""

banner() {
  STEP="$1"
  printf '\n===================================================================\n'
  printf '==> %s\n' "$STEP"
  printf '===================================================================\n'
}

trap 'status=$?; if [ $status -ne 0 ]; then printf "\nFAILED at step: %s (exit %d)\n" "$STEP" "$status" >&2; fi' EXIT

banner "format check (cargo fmt --check)"
cargo fmt --check

banner "lints (cargo clippy --workspace --all-targets -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

banner "release build (cargo build --release)"
cargo build --release

banner "test suite (cargo test --workspace -q)"
cargo test --workspace -q

banner "work-counter regression (fixed-seed campaign vs BENCH_counters.json)"
cargo run --release -p bench --bin counters_baseline -- --check

banner "serving-layer load test (redistload -> BENCH_serve.json)"
cargo run --release -p redistd --bin redistload -- \
  --requests 128 --connections 16 --distinct 8 --n 10 --out BENCH_serve.json

banner "observability scrape (redistd + redistctl: METRICS/FLIGHT gates)"
PORT_FILE="$(mktemp)"
FLIGHT_DUMP="$(mktemp)"
rm -f "$PORT_FILE"
./target/release/redistd --addr 127.0.0.1:0 --workers 2 \
  --port-file "$PORT_FILE" --flight-dump "$FLIGHT_DUMP" &
REDISTD_PID=$!
for _ in $(seq 1 100); do
  [ -s "$PORT_FILE" ] && break
  sleep 0.1
done
[ -s "$PORT_FILE" ] || { echo "redistd never wrote its port file" >&2; exit 1; }
ADDR="$(cat "$PORT_FILE")"
./target/release/redistload --addr "$ADDR" \
  --requests 64 --connections 8 --distinct 4 --n 10 --out /dev/null
# The exposition must be well-formed and the flight recorder must have a
# record for every request the load generator sent.
./target/release/redistctl metrics --addr "$ADDR" --validate > /dev/null
./target/release/redistctl flight --addr "$ADDR" --expect-requests 64 > /dev/null
kill -TERM "$REDISTD_PID"
wait "$REDISTD_PID"
[ -s "$FLIGHT_DUMP" ] || { echo "redistd wrote no flight dump on drain" >&2; exit 1; }
rm -f "$PORT_FILE" "$FLIGHT_DUMP"

banner "hierarchical-planner scale smoke (scale_bench --smoke, n=256 only)"
cargo run --release -p bench --bin scale_bench -- --smoke

banner "execution-runtime fault campaign (redistexec -> BENCH_exec.json)"
cargo run --release -p redistexec --bin redistexec -- \
  --bench --seeds 40 --out BENCH_exec.json

printf '\nAll checks passed.\n'
