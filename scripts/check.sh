#!/usr/bin/env bash
# Repository gate: formatting, lints and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."
