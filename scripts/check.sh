#!/usr/bin/env bash
# Repository gate: formatting, lints, release build, the full test suite and
# the deterministic work-counter regression check.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> work-counter regression (fixed-seed campaign vs BENCH_counters.json)"
cargo run --release -p bench --bin counters_baseline -- --check

echo "All checks passed."
