//! Integration tests of the future-work extensions, composed across crates:
//! local pre-redistribution, online arrivals, adaptive re-planning under a
//! dynamic backbone, barrier weakening, and the WDM objective.

use bipartite::generate::complete_graph;
use bipartite::Graph;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use redistribute::flowsim::{adaptive_scheduled_time, CapacityProfile, NetworkSpec, SimConfig};
use redistribute::kpbs::adaptive::{adaptive_schedule, validate_adaptive, CyclicK};
use redistribute::kpbs::online::{online_vs_offline, ArrivingMessage};
use redistribute::kpbs::prelocal::{aggregate, dispatch, LocalConfig};
use redistribute::kpbs::relax::relax_k;
use redistribute::kpbs::wdm::{overlapped_cost, overlapped_lower_bound};
use redistribute::kpbs::{self, Instance, TrafficMatrix};

#[test]
fn aggregation_pays_off_on_small_message_swarms() {
    // 8 senders spraying tiny messages at 3 receivers, with a fat setup
    // delay: aggregation must win, and the rewritten plan must still be a
    // feasible schedule end to end.
    let mut rng = SmallRng::seed_from_u64(71);
    let mut g = Graph::new(8, 3);
    for s in 0..8 {
        for d in 0..3 {
            if rng.gen_bool(0.8) {
                g.add_edge(s, d, rng.gen_range(1..3));
            }
        }
    }
    let inst = Instance::new(g, 3, 8);
    let direct = kpbs::oggp(&inst).cost();
    let pre = aggregate(
        &inst,
        &LocalConfig {
            small_threshold: 5,
            local_speedup: 20.0,
        },
    );
    let s = kpbs::oggp(&pre.instance);
    s.validate(&pre.instance).unwrap();
    assert!(
        pre.local_cost + s.cost() < direct,
        "aggregate {} + {} !< direct {direct}",
        pre.local_cost,
        s.cost()
    );
}

#[test]
fn dispatch_then_schedule_is_consistent() {
    let mut g = Graph::new(4, 4);
    for d in 0..4 {
        g.add_edge(0, d, 10); // sender 0 hoards everything
    }
    let inst = Instance::new(g, 4, 1);
    let pre = dispatch(&inst, &LocalConfig::default());
    let before = kpbs::oggp(&inst);
    let after = kpbs::oggp(&pre.instance);
    after.validate(&pre.instance).unwrap();
    assert!(
        pre.local_cost + after.cost() <= before.cost(),
        "dispatch should pay off on a hoarding sender: {} + {} vs {}",
        pre.local_cost,
        after.cost(),
        before.cost()
    );
}

#[test]
fn online_regret_shrinks_with_fewer_arrival_batches() {
    let base = [
        ArrivingMessage {
            release: 0,
            src: 0,
            dst: 0,
            ticks: 8,
        },
        ArrivingMessage {
            release: 0,
            src: 1,
            dst: 1,
            ticks: 8,
        },
        ArrivingMessage {
            release: 0,
            src: 2,
            dst: 2,
            ticks: 8,
        },
        ArrivingMessage {
            release: 0,
            src: 0,
            dst: 1,
            ticks: 4,
        },
        ArrivingMessage {
            release: 0,
            src: 1,
            dst: 2,
            ticks: 4,
        },
        ArrivingMessage {
            release: 0,
            src: 2,
            dst: 0,
            ticks: 4,
        },
    ];
    let all_upfront = online_vs_offline(3, 3, 3, 1, &base);
    let mut staggered = base;
    for (i, m) in staggered.iter_mut().enumerate() {
        m.release = i * 3; // trickle in after the residual drains
    }
    let trickled = online_vs_offline(3, 3, 3, 1, &staggered);
    assert!(all_upfront.regret() <= trickled.regret() + 1e-9);
    assert!(all_upfront.online_cost >= all_upfront.offline_cost);
}

#[test]
fn adaptive_plan_agrees_with_flowsim_adaptive_executor() {
    // The per-step adaptive plan (kpbs) and the time-driven adaptive
    // executor (flowsim) are different formalisms of the same idea; both
    // must complete the same workload under a shrinking backbone, with the
    // executor's wall-clock inside loose analytic envelopes.
    let mut traffic = TrafficMatrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            traffic.set(i, j, 1_500_000 + (i * 4 + j) as u64 * 250_000);
        }
    }
    let spec = NetworkSpec {
        nic_out: vec![25.0; 4],
        nic_in: vec![25.0; 4],
        backbone: CapacityProfile::Piecewise(vec![(0.0, 100.0), (3.0, 50.0)]),
        extra_links: Vec::new(),
        route: Vec::new(),
    };
    let r = adaptive_scheduled_time(&traffic, &spec, 25.0, 0.01, &SimConfig::default());
    let vol = traffic.total_bytes() as f64;
    assert!(r.total_seconds >= vol / 12.5e6 * 0.9);
    assert!(r.total_seconds <= vol / 3.125e6 * 1.5);

    // The step-indexed adaptive plan on an equivalent tick problem.
    let mut g = Graph::new(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            g.add_edge(i, j, traffic.get(i, j) / 3125); // ms at 25 Mbit/s
        }
    }
    let profile = CyclicK(vec![4, 4, 2, 2, 2, 2]);
    let plan = adaptive_schedule(&g, 10, &profile);
    validate_adaptive(&g, &plan, &profile).unwrap();
}

#[test]
fn relaxation_composes_with_oggp_on_testbed_scale() {
    let mut rng = SmallRng::seed_from_u64(72);
    let g = complete_graph(&mut rng, 10, 10, (10, 50));
    let inst = Instance::new(g.clone(), 5, 2);
    let s = kpbs::oggp(&inst);
    let relaxed = relax_k(&s, &g, 5);
    assert!(relaxed.makespan <= s.cost());
    assert!(relaxed.peak_concurrency <= 5);
    // The saving is real but bounded: barriers are cheap in this regime
    // (the paper's observation that "barriers cost extremely little").
    let saving = 1.0 - relaxed.makespan as f64 / s.cost() as f64;
    assert!(
        (0.0..0.5).contains(&saving),
        "implausible barrier saving {saving}"
    );
}

#[test]
fn wdm_objective_consistent_with_synchronous() {
    let mut rng = SmallRng::seed_from_u64(73);
    let g = complete_graph(&mut rng, 6, 6, (1, 20));
    let inst = Instance::new(g, 6, 4);
    let s = kpbs::oggp(&inst);
    let overlapped = overlapped_cost(&s, inst.beta);
    assert!(overlapped <= s.cost() + inst.beta);
    assert!(overlapped >= overlapped_lower_bound(&inst));
}
