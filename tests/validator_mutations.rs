//! Mutation tests of the schedule validator: take valid OGGP schedules and
//! corrupt them in every way the feasibility conditions forbid — the
//! validator must catch each one. This guards the guard: every other test
//! in the suite trusts `validate` to be airtight.

use bipartite::generate::{random_graph, GraphParams};
use kpbs::schedule::{Step, Transfer};
use kpbs::{oggp, Instance};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn workloads(seed: u64, count: usize) -> Vec<Instance> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let params = GraphParams {
        max_nodes_per_side: 8,
        max_edges: 30,
        weight_range: (2, 15),
    };
    (0..count)
        .map(|_| {
            let g = random_graph(&mut rng, &params);
            let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
            Instance::new(g, k, rng.gen_range(0..3))
        })
        .collect()
}

#[test]
fn inflating_any_amount_is_caught() {
    for inst in workloads(1, 20) {
        let mut s = oggp(&inst);
        assert!(s.validate(&inst).is_ok());
        s.steps[0].transfers[0].amount += 1;
        assert!(s.validate(&inst).is_err(), "over-coverage must be caught");
    }
}

#[test]
fn deflating_any_amount_is_caught() {
    for inst in workloads(2, 20) {
        let mut s = oggp(&inst);
        let t = &mut s.steps[0].transfers[0];
        if t.amount > 1 {
            t.amount -= 1;
            assert!(s.validate(&inst).is_err(), "under-coverage must be caught");
        } else {
            // Removing the only tick of a slice is under-coverage too.
            t.amount = 0;
            assert!(s.validate(&inst).is_err(), "zero amounts must be caught");
        }
    }
}

#[test]
fn dropping_a_step_is_caught() {
    for inst in workloads(3, 20) {
        let mut s = oggp(&inst);
        if s.num_steps() < 2 {
            continue;
        }
        s.steps.pop();
        assert!(
            s.validate(&inst).is_err(),
            "missing coverage must be caught"
        );
    }
}

#[test]
fn duplicating_a_transfer_in_a_step_is_caught() {
    for inst in workloads(4, 20) {
        let mut s = oggp(&inst);
        let dup = s.steps[0].transfers[0];
        s.steps[0].transfers.push(dup);
        // Same edge twice in one step shares both endpoints: 1-port (or, if
        // k is also exceeded, width) must fire.
        assert!(
            s.validate(&inst).is_err(),
            "duplicate transfer must be caught"
        );
    }
}

#[test]
fn widening_a_step_beyond_k_is_caught() {
    for inst in workloads(5, 30) {
        let k = inst.effective_k();
        let mut s = oggp(&inst);
        // Build an artificial step wider than k out of existing slices (only
        // possible when some step already has k transfers and another step
        // has a transfer with disjoint endpoints).
        let Some(full_idx) = s.steps.iter().position(|st| st.width() == k) else {
            continue;
        };
        let g = &inst.graph;
        let full: Vec<_> = s.steps[full_idx]
            .transfers
            .iter()
            .map(|t| (g.left_of(t.edge), g.right_of(t.edge)))
            .collect();
        let mut donor: Option<(usize, usize)> = None;
        for (si, st) in s.steps.iter().enumerate() {
            if si == full_idx {
                continue;
            }
            for (ti, t) in st.transfers.iter().enumerate() {
                let (l, r) = (g.left_of(t.edge), g.right_of(t.edge));
                if full.iter().all(|&(fl, fr)| fl != l && fr != r) {
                    donor = Some((si, ti));
                    break;
                }
            }
            if donor.is_some() {
                break;
            }
        }
        let Some((si, ti)) = donor else { continue };
        let moved = s.steps[si].transfers.remove(ti);
        s.steps[full_idx].transfers.push(moved);
        if s.steps[si].transfers.is_empty() {
            s.steps[si] = Step {
                transfers: vec![moved],
            }; // avoid the EmptyStep error masking the width error
            s.steps[full_idx].transfers.pop();
            continue;
        }
        assert!(
            s.validate(&inst).is_err(),
            "step wider than k = {k} must be caught"
        );
    }
}

#[test]
fn foreign_edge_is_caught() {
    for inst in workloads(6, 10) {
        let mut s = oggp(&inst);
        let bogus = bipartite::EdgeId(10_000);
        s.steps[0].transfers.push(Transfer {
            edge: bogus,
            amount: 1,
        });
        assert!(s.validate(&inst).is_err(), "unknown edges must be caught");
    }
}

#[test]
fn reordering_steps_is_harmless() {
    // Control mutation: step order does not affect feasibility (the model
    // has no precedence between slices beyond coverage).
    for inst in workloads(7, 20) {
        let mut s = oggp(&inst);
        s.steps.reverse();
        assert!(s.validate(&inst).is_ok(), "reversal must stay feasible");
    }
}
