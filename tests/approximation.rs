//! Property-based verification of the paper's central claims:
//!
//! * GGP and OGGP always produce *feasible* schedules (1-port, ≤ k, exact
//!   coverage) — Theorem 1's precondition;
//! * their cost never drops below the Cohen–Jeannot–Padoy lower bound;
//! * on instances small enough for the exact solver, cost ≤ 2 × optimum
//!   (the 2-approximation of Theorem 1);
//! * OGGP's aggregate cost never exceeds GGP's.

use bipartite::Graph;
use kpbs::exact::{optimal_cost, Limits};
use kpbs::{ggp, lower_bound, oggp, Instance};
use proptest::prelude::*;

/// Strategy: a random instance with at most `max_side` nodes per side,
/// `max_edges` distinct edges, weights ≤ `max_w`.
fn instance_strategy(
    max_side: usize,
    max_edges: usize,
    max_w: u64,
    max_beta: u64,
) -> impl Strategy<Value = Instance> {
    (1..=max_side, 1..=max_side)
        .prop_flat_map(move |(nl, nr)| {
            let edges = proptest::collection::vec(
                (0..nl, 0..nr, 1..=max_w),
                1..=max_edges.min(nl * nr * 2),
            );
            let k = 1..=nl.min(nr);
            let beta = 0..=max_beta;
            (Just((nl, nr)), edges, k, beta)
        })
        .prop_map(|((nl, nr), edges, k, beta)| {
            let mut g = Graph::new(nl, nr);
            let mut seen = std::collections::HashSet::new();
            for (l, r, w) in edges {
                // Keep pairs distinct: parallel messages between one pair
                // merge into one in the traffic-matrix world.
                if seen.insert((l, r)) {
                    g.add_edge(l, r, w);
                }
            }
            Instance::new(g, k, beta)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn ggp_feasible_and_bounded(inst in instance_strategy(10, 40, 30, 5)) {
        let s = ggp(&inst);
        prop_assert!(s.validate(&inst).is_ok(), "{:?}", s.validate(&inst));
        prop_assert!(s.cost() >= lower_bound(&inst));
    }

    #[test]
    fn oggp_feasible_and_bounded(inst in instance_strategy(10, 40, 30, 5)) {
        let s = oggp(&inst);
        prop_assert!(s.validate(&inst).is_ok(), "{:?}", s.validate(&inst));
        prop_assert!(s.cost() >= lower_bound(&inst));
    }

    #[test]
    fn two_approximation_on_tiny_instances(inst in instance_strategy(3, 5, 4, 2)) {
        if let Some(opt) = optimal_cost(&inst, Limits::default()) {
            let g = ggp(&inst).cost();
            let o = oggp(&inst).cost();
            prop_assert!(opt >= lower_bound(&inst));
            prop_assert!(g >= opt, "GGP {} beat the optimum {}", g, opt);
            prop_assert!(o >= opt, "OGGP {} beat the optimum {}", o, opt);
            prop_assert!(g <= 2 * opt, "GGP {} > 2x optimum {}", g, opt);
            prop_assert!(o <= 2 * opt, "OGGP {} > 2x optimum {}", o, opt);
        }
    }

    #[test]
    fn steps_bounded_by_theory(inst in instance_strategy(8, 30, 20, 3)) {
        // Section 4.2.4: at most m + 2n + 1 peels; the extracted schedule
        // can only have fewer steps.
        let m = inst.graph.edge_count();
        let n = inst.graph.node_count();
        let s = ggp(&inst);
        prop_assert!(s.num_steps() <= m + 2 * n + 1);
        let o = oggp(&inst);
        prop_assert!(o.num_steps() <= m + 2 * n + 1);
    }

    #[test]
    fn beta_zero_is_optimal(inst in instance_strategy(10, 40, 30, 0)) {
        // With β = 0 the peeling is exactly optimal: WRGP transmits for
        // R = max(W(G), ceil(P/k)) ticks in total, which equals the lower
        // bound's transmission term, and setups are free (this recovers the
        // polynomial optimality of the zero-setup SS/TDMA problem, ref [4]
        // of the paper).
        prop_assume!(inst.beta == 0);
        let lb = lower_bound(&inst);
        prop_assert_eq!(ggp(&inst).cost(), lb);
        prop_assert_eq!(oggp(&inst).cost(), lb);
    }

    #[test]
    fn volume_preserved(inst in instance_strategy(8, 30, 50, 3)) {
        // Total transmitted amount equals total weight, for both algorithms
        // (already implied by validate, asserted directly for clarity).
        let total = inst.total_weight();
        prop_assert_eq!(ggp(&inst).volume(), total);
        prop_assert_eq!(oggp(&inst).volume(), total);
    }
}

#[test]
fn oggp_aggregate_never_worse_than_ggp() {
    // Aggregated over a deterministic campaign (single instances can tie or
    // flip by a peel, the aggregate must not).
    use bipartite::generate::{random_graph, GraphParams};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(2024);
    let params = GraphParams {
        max_nodes_per_side: 12,
        max_edges: 80,
        weight_range: (1, 20),
    };
    let (mut cg, mut co, mut sg, mut so) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..120 {
        let g = random_graph(&mut rng, &params);
        let k = rng.gen_range(1..=g.left_count().min(g.right_count()));
        let inst = Instance::new(g, k, 1);
        let a = ggp(&inst);
        let b = oggp(&inst);
        cg += a.cost();
        co += b.cost();
        sg += a.num_steps() as u64;
        so += b.num_steps() as u64;
    }
    assert!(co <= cg, "OGGP aggregate cost {co} exceeds GGP {cg}");
    assert!(so <= sg, "OGGP aggregate steps {so} exceed GGP {sg}");
    // The paper reports roughly half the steps.
    assert!(
        (so as f64) < 0.8 * sg as f64,
        "OGGP step saving too small: {so} vs {sg}"
    );
}
