//! End-to-end integration: traffic matrix → platform → schedule →
//! execution, across all three execution paths (analytic cost, fluid
//! simulation, threaded runtime).

use redistribute::flowsim::{NetworkSpec, SimConfig};
use redistribute::kpbs::{Platform, TrafficMatrix};
use redistribute::mpilite::FabricConfig;
use redistribute::{Algorithm, Planner};

fn workload() -> (TrafficMatrix, Platform) {
    let platform = Platform::new(5, 5, 100.0, 100.0, 300.0); // k = 3
    let mut t = TrafficMatrix::zeros(5, 5);
    let mut v = 1_000_000u64;
    for i in 0..5 {
        for j in 0..5 {
            if (i + j) % 2 == 0 {
                t.set(i, j, v);
                v = v % 7_000_000 + 1_300_000;
            }
        }
    }
    (t, platform)
}

#[test]
fn plan_simulate_execute_agree() {
    let (traffic, platform) = workload();
    let plan = Planner::new(Algorithm::Oggp).plan(&traffic, &platform);
    plan.schedule.validate(&plan.instance).unwrap();

    // Analytic cost vs ideal fluid simulation: within tick rounding.
    let sim = plan.simulate_ideal();
    let analytic = plan.cost_seconds();
    let rel = (sim.total_seconds - analytic).abs() / analytic;
    assert!(
        rel < 0.02,
        "sim {} vs analytic {analytic}",
        sim.total_seconds
    );

    // Threaded runtime: every byte delivered and verified.
    let fabric = FabricConfig {
        out_bytes_per_s: 2e9,
        in_bytes_per_s: 2e9,
        backbone_bytes_per_s: 6e9,
        chunk_bytes: 64 * 1024,
    };
    let run = plan.execute_threaded(fabric);
    assert_eq!(run.bytes_moved, traffic.total_bytes());
    assert_eq!(run.steps, plan.schedule.num_steps());
}

#[test]
fn every_algorithm_end_to_end() {
    let (traffic, platform) = workload();
    let spec = NetworkSpec::from_platform(&platform);
    for algo in [
        Algorithm::Ggp,
        Algorithm::Oggp,
        Algorithm::Sequential,
        Algorithm::List,
        Algorithm::Greedy,
    ] {
        let plan = Planner::new(algo).plan(&traffic, &platform);
        plan.schedule
            .validate(&plan.instance)
            .unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        let sim = plan.simulate(&spec, &SimConfig::default());
        assert!(sim.total_seconds > 0.0, "{algo:?}");
        // Simulated time never beats the lower bound (barriers included in
        // both sides of the comparison).
        assert!(
            sim.total_seconds >= plan.lower_bound_seconds() * 0.999,
            "{algo:?}: sim {} below bound {}",
            sim.total_seconds,
            plan.lower_bound_seconds()
        );
    }
}

#[test]
fn schedulers_dominate_sequential_strawman() {
    let (traffic, platform) = workload();
    let seq = Planner::new(Algorithm::Sequential).plan(&traffic, &platform);
    for algo in [Algorithm::Ggp, Algorithm::Oggp, Algorithm::List] {
        let plan = Planner::new(algo).plan(&traffic, &platform);
        assert!(
            plan.cost_seconds() <= seq.cost_seconds() * 1.001,
            "{algo:?} worse than fully sequential"
        );
    }
}

#[test]
fn planner_options_respected() {
    let (traffic, platform) = workload();
    let p0 = Planner::new(Algorithm::Oggp)
        .with_beta(0.0)
        .plan(&traffic, &platform);
    let p1 = Planner::new(Algorithm::Oggp)
        .with_beta(0.5)
        .plan(&traffic, &platform);
    assert_eq!(p0.instance.beta, 0);
    assert_eq!(p1.instance.beta, 500); // ms ticks
                                       // A large β discourages preemption: no more slices than edges + steps.
    assert!(p1.schedule.num_steps() <= p0.schedule.num_steps().max(p0.instance.graph.edge_count()));
}

#[test]
fn asymmetric_clusters_supported() {
    // 8 senders, 3 receivers, mismatched NIC speeds.
    let platform = Platform::new(8, 3, 10.0, 100.0, 40.0); // t = 10, k = 3 (receiver-capped)
    assert_eq!(platform.k(), 3);
    let mut t = TrafficMatrix::zeros(8, 3);
    for i in 0..8 {
        t.set(i, i % 3, 500_000 + i as u64 * 100_000);
    }
    let plan = Planner::new(Algorithm::Oggp).plan(&t, &platform);
    plan.schedule.validate(&plan.instance).unwrap();
    assert!(plan.evaluation_ratio() < 2.0);
    let sim = plan.simulate_ideal();
    assert!(sim.total_seconds > 0.0);
}
