//! Scaled-down versions of every experiment in the paper's Section 5,
//! asserting the qualitative *shapes* the paper reports. The full-size
//! harnesses live in `crates/bench/src/bin/`; these keep the claims under
//! continuous test.

use rand::{rngs::SmallRng, SeedableRng};
use redistribute::flowsim::{brute_force_time, scheduled_time, NetworkSpec, SimConfig, TcpModel};
use redistribute::kpbs::stats::{run_campaign, CampaignConfig, KChoice};
use redistribute::kpbs::traffic::TickScale;
use redistribute::kpbs::{ggp, oggp, Platform, TrafficMatrix};

/// Figure 7 shape: small weights (U[1,20], β = 1). OGGP's average beats
/// GGP's; worst cases stay well under the 2-approximation ceiling.
#[test]
fn figure7_shape() {
    for k in [2, 5, 10] {
        let cfg = CampaignConfig {
            trials: 120,
            max_nodes_per_side: 12,
            max_edges: 100,
            weight_range: (1, 20),
            beta: 1,
            k: KChoice::Fixed(k),
            seed: 100 + k as u64,
        };
        let r = run_campaign(&cfg);
        assert!(r.oggp.mean <= r.ggp.mean, "k={k}");
        assert!(r.oggp.mean < 1.2, "k={k}: OGGP avg {}", r.oggp.mean);
        assert!(r.ggp.max < 1.6, "k={k}: GGP max {}", r.ggp.max);
        assert!(r.ggp.min >= 1.0 && r.oggp.min >= 1.0);
        // The paper: OGGP's worst case below GGP's average is the headline;
        // at small trial counts allow a whisker of slack.
        assert!(
            r.oggp.max <= r.ggp.max + 1e-9,
            "k={k}: OGGP max {} above GGP max {}",
            r.oggp.max,
            r.ggp.max
        );
    }
}

/// Figure 8 shape: large weights (U[1,10000]) → both algorithms within a
/// fraction of a percent of the lower bound.
#[test]
fn figure8_shape() {
    let cfg = CampaignConfig {
        trials: 60,
        max_nodes_per_side: 12,
        max_edges: 100,
        weight_range: (1, 10_000),
        beta: 1,
        k: KChoice::Random,
        seed: 8,
    };
    let r = run_campaign(&cfg);
    assert!(r.ggp.max < 1.02, "GGP max {}", r.ggp.max);
    assert!(r.oggp.max < 1.02, "OGGP max {}", r.oggp.max);
}

/// Figure 9 shape: ratios rise while β is comparable to the weights, then
/// fall once β dominates the bound.
#[test]
fn figure9_shape() {
    let at_beta = |beta| {
        let cfg = CampaignConfig {
            trials: 120,
            max_nodes_per_side: 12,
            max_edges: 100,
            weight_range: (1, 20),
            beta,
            k: KChoice::Random,
            seed: 9,
        };
        run_campaign(&cfg)
    };
    let low = at_beta(0);
    let mid = at_beta(8);
    let high = at_beta(100);
    assert!(
        mid.ggp.mean > low.ggp.mean,
        "ratio should rise with moderate beta: {} vs {}",
        mid.ggp.mean,
        low.ggp.mean
    );
    assert!(
        high.ggp.mean < mid.ggp.mean,
        "ratio should fall when beta dominates: {} vs {}",
        high.ggp.mean,
        mid.ggp.mean
    );
    assert!(mid.oggp.mean <= mid.ggp.mean);
}

/// Figures 10–11 shape: scheduled beats lossy brute force, the improvement
/// is in the 2–35 % band, and grows with k.
#[test]
fn figures_10_11_shape() {
    let mut gains = Vec::new();
    for k in [3usize, 7] {
        let platform = Platform::testbed(k);
        let spec = NetworkSpec::from_platform(&platform);
        let mut rng = SmallRng::seed_from_u64(1100 + k as u64);
        let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 40);
        let (inst, endpoints) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
        let schedule = oggp(&inst);
        let lossy = SimConfig {
            tcp: TcpModel::default(),
            seed: 0,
            record_trace: false,
        };
        let brute = brute_force_time(&traffic, &spec, &lossy).total_seconds;
        let sched = scheduled_time(&traffic, &inst, &endpoints, &schedule, &spec, 0.05, &lossy)
            .total_seconds;
        let gain = 1.0 - sched / brute;
        assert!(
            (0.02..0.35).contains(&gain),
            "k={k}: gain {gain} outside the paper's band"
        );
        gains.push(gain);
    }
    assert!(gains[1] > gains[0], "gain should grow with k: {gains:?}");
}

/// Section 5.2 in-text: OGGP needs roughly half the steps of GGP on the
/// testbed workloads, yet lands within a hair of GGP's total time.
#[test]
fn steps_and_time_claim() {
    let platform = Platform::testbed(5);
    let spec = NetworkSpec::from_platform(&platform);
    let mut rng = SmallRng::seed_from_u64(55);
    let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 40);
    let (inst, endpoints) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
    let sg = ggp(&inst);
    let so = oggp(&inst);
    assert!(
        (so.num_steps() as f64) < 0.7 * sg.num_steps() as f64,
        "OGGP {} steps vs GGP {}",
        so.num_steps(),
        sg.num_steps()
    );
    let cfg = SimConfig::default();
    let tg = scheduled_time(&traffic, &inst, &endpoints, &sg, &spec, 0.05, &cfg).total_seconds;
    let to = scheduled_time(&traffic, &inst, &endpoints, &so, &spec, 0.05, &cfg).total_seconds;
    let rel = (tg - to).abs() / tg;
    assert!(rel < 0.1, "GGP {tg} vs OGGP {to}: should be close");
}

/// Section 5.2 in-text: brute force varies run to run; the scheduled arm is
/// bit-for-bit deterministic.
#[test]
fn determinism_claim() {
    let platform = Platform::testbed(3);
    let spec = NetworkSpec::from_platform(&platform);
    let mut rng = SmallRng::seed_from_u64(66);
    let traffic = TrafficMatrix::uniform_mb(&mut rng, 10, 10, 10, 30);
    let (inst, endpoints) = traffic.to_instance(&platform, 0.05, TickScale::MILLIS);
    let schedule = oggp(&inst);

    let mut brutes = Vec::new();
    let mut scheds = Vec::new();
    for seed in 0..6 {
        let cfg = SimConfig {
            tcp: TcpModel::default(),
            seed,
            record_trace: false,
        };
        brutes.push(brute_force_time(&traffic, &spec, &cfg).total_seconds);
        scheds.push(
            scheduled_time(&traffic, &inst, &endpoints, &schedule, &spec, 0.05, &cfg).total_seconds,
        );
    }
    let bmin = brutes.iter().cloned().fold(f64::INFINITY, f64::min);
    let bmax = brutes.iter().cloned().fold(0.0, f64::max);
    assert!(bmax > bmin, "brute force should jitter across seeds");
    assert!(
        (bmax - bmin) / bmin < 0.25,
        "jitter {} too large",
        (bmax - bmin) / bmin
    );
    assert!(
        scheds.windows(2).all(|w| w[0] == w[1]),
        "scheduled arm must not depend on the seed"
    );
}
